#include "storage/database.h"

#include <gtest/gtest.h>

namespace park {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest() : symbols_(MakeSymbolTable()), db_(symbols_) {}

  GroundAtom Atom(std::string_view pred,
                  const std::vector<std::string>& args) {
    PredicateId p = symbols_->InternPredicate(
        pred, static_cast<int>(args.size()));
    Tuple t;
    for (const auto& a : args) {
      t.Append(Value::Symbol(symbols_->InternSymbol(a)));
    }
    return GroundAtom(p, std::move(t));
  }

  std::shared_ptr<SymbolTable> symbols_;
  Database db_;
};

TEST_F(DatabaseTest, InsertContainsErase) {
  GroundAtom atom = Atom("p", {"a"});
  EXPECT_TRUE(db_.Insert(atom));
  EXPECT_FALSE(db_.Insert(atom));
  EXPECT_TRUE(db_.Contains(atom));
  EXPECT_EQ(db_.size(), 1u);
  EXPECT_TRUE(db_.Erase(atom));
  EXPECT_FALSE(db_.Erase(atom));
  EXPECT_TRUE(db_.empty());
}

TEST_F(DatabaseTest, InsertAtomConvenience) {
  EXPECT_TRUE(db_.InsertAtom("edge", {"a", "b"}));
  EXPECT_TRUE(db_.Contains(Atom("edge", {"a", "b"})));
  EXPECT_FALSE(db_.InsertAtom("edge", {"a", "b"}));
}

TEST_F(DatabaseTest, EraseFromUnknownPredicate) {
  EXPECT_FALSE(db_.Erase(Atom("never", {"x"})));
}

TEST_F(DatabaseTest, ToStringSortsAtoms) {
  db_.InsertAtom("q", {"b"});
  db_.InsertAtom("p", {"a"});
  db_.InsertAtom("p", {});
  EXPECT_EQ(db_.ToString(), "{p, p(a), q(b)}");
}

TEST_F(DatabaseTest, CloneIsIndependent) {
  db_.InsertAtom("p", {"a"});
  Database copy = db_.Clone();
  copy.InsertAtom("p", {"b"});
  EXPECT_EQ(db_.size(), 1u);
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.symbols(), db_.symbols());
}

TEST_F(DatabaseTest, SameAtoms) {
  db_.InsertAtom("p", {"a"});
  Database other = db_.Clone();
  EXPECT_TRUE(db_.SameAtoms(other));
  other.InsertAtom("p", {"b"});
  EXPECT_FALSE(db_.SameAtoms(other));
  db_.InsertAtom("q", {"b"});
  EXPECT_FALSE(db_.SameAtoms(other));  // same size, different atoms
}

TEST_F(DatabaseTest, DiffWith) {
  db_.InsertAtom("p", {"a"});
  db_.InsertAtom("p", {"b"});
  Database other(symbols_);
  other.InsertAtom("p", {"b"});
  other.InsertAtom("q", {"c"});
  Database::Diff diff = db_.DiffWith(other);
  ASSERT_EQ(diff.only_in_this.size(), 1u);
  EXPECT_EQ(diff.only_in_this[0].ToString(*symbols_), "p(a)");
  ASSERT_EQ(diff.only_in_other.size(), 1u);
  EXPECT_EQ(diff.only_in_other[0].ToString(*symbols_), "q(c)");
  EXPECT_FALSE(diff.empty());
  EXPECT_TRUE(db_.DiffWith(db_.Clone()).empty());
}

TEST_F(DatabaseTest, GetRelation) {
  EXPECT_EQ(db_.GetRelation(symbols_->InternPredicate("p", 1)), nullptr);
  db_.InsertAtom("p", {"a"});
  const Relation* rel = db_.GetRelation(symbols_->InternPredicate("p", 1));
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->size(), 1u);
}

TEST_F(DatabaseTest, ForEachVisitsEverything) {
  db_.InsertAtom("p", {"a"});
  db_.InsertAtom("q", {"b", "c"});
  db_.InsertAtom("r", {});
  size_t count = 0;
  db_.ForEach([&](const GroundAtom&) { ++count; });
  EXPECT_EQ(count, 3u);
}

TEST_F(DatabaseTest, MixedValueTypes) {
  PredicateId p = symbols_->InternPredicate("score", 2);
  db_.Insert(GroundAtom(
      p, Tuple{Value::Symbol(symbols_->InternSymbol("alice")),
               Value::Int(100)}));
  EXPECT_EQ(db_.ToString(), "{score(alice, 100)}");
}

}  // namespace
}  // namespace park
