#include "lang/lexer.h"

#include <gtest/gtest.h>

namespace park {
namespace {

std::vector<TokenKind> Kinds(std::string_view input) {
  auto tokens = LexAll(input);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  std::vector<TokenKind> kinds;
  if (!tokens.ok()) return kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  return kinds;
}

TEST(LexerTest, EmptyInput) {
  EXPECT_EQ(Kinds(""), (std::vector<TokenKind>{TokenKind::kEof}));
  EXPECT_EQ(Kinds("   \n\t "), (std::vector<TokenKind>{TokenKind::kEof}));
}

TEST(LexerTest, IdentifiersVsVariables) {
  auto tokens = LexAll("emp Emp _x _ eMp");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "emp");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kVariable);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kVariable);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kVariable);
  EXPECT_EQ((*tokens)[3].text, "_");
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kIdentifier);
}

TEST(LexerTest, NotKeywordIsNegation) {
  auto tokens = LexAll("not p");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kBang);
  // But identifiers merely containing "not" are not special.
  auto tokens2 = LexAll("nothing");
  ASSERT_TRUE(tokens2.ok());
  EXPECT_EQ((*tokens2)[0].kind, TokenKind::kIdentifier);
}

TEST(LexerTest, Punctuation) {
  EXPECT_EQ(Kinds("( ) [ ] , . : -> + - ! ="),
            (std::vector<TokenKind>{
                TokenKind::kLParen, TokenKind::kRParen, TokenKind::kLBracket,
                TokenKind::kRBracket, TokenKind::kComma, TokenKind::kPeriod,
                TokenKind::kColon, TokenKind::kArrow, TokenKind::kPlus,
                TokenKind::kMinus, TokenKind::kBang, TokenKind::kEquals,
                TokenKind::kEof}));
}

TEST(LexerTest, ArrowVsMinus) {
  EXPECT_EQ(Kinds("- -5"),
            (std::vector<TokenKind>{TokenKind::kMinus, TokenKind::kMinus,
                                    TokenKind::kInt, TokenKind::kEof}));
  // '>' alone is an error; '->' is one token.
  EXPECT_FALSE(LexAll(">").ok());
  auto tokens = LexAll("a->b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kArrow);
}

TEST(LexerTest, Integers) {
  auto tokens = LexAll("0 42 123456789");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].int_value, 0);
  EXPECT_EQ((*tokens)[1].int_value, 42);
  EXPECT_EQ((*tokens)[2].int_value, 123456789);
}

TEST(LexerTest, Strings) {
  auto tokens = LexAll(R"("hello" "a \"b\"" "tab\tnl\n")");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "hello");
  EXPECT_EQ((*tokens)[1].text, "a \"b\"");
  EXPECT_EQ((*tokens)[2].text, "tab\tnl\n");
}

TEST(LexerTest, StringErrors) {
  EXPECT_FALSE(LexAll("\"unterminated").ok());
  EXPECT_FALSE(LexAll("\"bad \\x escape\"").ok());
  EXPECT_FALSE(LexAll("\"newline\nin string\"").ok());
}

TEST(LexerTest, Comments) {
  EXPECT_EQ(Kinds("// line comment\np # hash\n% prolog\nq"),
            (std::vector<TokenKind>{TokenKind::kIdentifier,
                                    TokenKind::kIdentifier, TokenKind::kEof}));
}

TEST(LexerTest, LineAndColumnTracking) {
  auto tokens = LexAll("p\n  q(X)");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[0].column, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[1].column, 3);
  EXPECT_EQ((*tokens)[2].line, 2);  // '('
  EXPECT_EQ((*tokens)[2].column, 4);
}

TEST(LexerTest, ErrorPositionIsReported) {
  auto tokens = LexAll("p\n  @");
  EXPECT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("2:3"), std::string::npos)
      << tokens.status().ToString();
}

TEST(LexerTest, RealisticRule) {
  EXPECT_EQ(
      Kinds("r1: emp(X), !active(X) -> -payroll(X, S)."),
      (std::vector<TokenKind>{
          TokenKind::kIdentifier, TokenKind::kColon, TokenKind::kIdentifier,
          TokenKind::kLParen, TokenKind::kVariable, TokenKind::kRParen,
          TokenKind::kComma, TokenKind::kBang, TokenKind::kIdentifier,
          TokenKind::kLParen, TokenKind::kVariable, TokenKind::kRParen,
          TokenKind::kArrow, TokenKind::kMinus, TokenKind::kIdentifier,
          TokenKind::kLParen, TokenKind::kVariable, TokenKind::kComma,
          TokenKind::kVariable, TokenKind::kRParen, TokenKind::kPeriod,
          TokenKind::kEof}));
}

}  // namespace
}  // namespace park
