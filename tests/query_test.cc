// The pattern-query API (lang/query.h).

#include "lang/query.h"

#include <gtest/gtest.h>

#include "park/park.h"

namespace park {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  QueryTest()
      : symbols_(MakeSymbolTable()),
        db_(ParseDatabase(R"(
              payroll(ada, 9000). payroll(bob, 6500). payroll(eve, 9000).
              emp(ada). emp(bob). emp(eve).
              edge(a, b). edge(b, b). edge(b, c).
              flag.
            )", symbols_).value()) {}

  std::vector<std::string> Rows(std::string_view pattern) {
    auto result = QueryDatabase(db_, pattern, symbols_);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return {};
    return result->ToStrings(*symbols_);
  }

  std::shared_ptr<SymbolTable> symbols_;
  Database db_;
};

TEST_F(QueryTest, AllVariables) {
  EXPECT_EQ(Rows("payroll(X, S)"),
            (std::vector<std::string>{"X=ada, S=9000", "X=bob, S=6500",
                                      "X=eve, S=9000"}));
}

TEST_F(QueryTest, ConstantFilters) {
  EXPECT_EQ(Rows("payroll(X, 9000)"),
            (std::vector<std::string>{"X=ada", "X=eve"}));
  EXPECT_EQ(Rows("payroll(bob, S)"),
            (std::vector<std::string>{"S=6500"}));
}

TEST_F(QueryTest, GroundPatternActsAsExists) {
  auto hit = QueryDatabase(db_, "payroll(ada, 9000)", symbols_);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->size(), 1u);
  EXPECT_TRUE(hit->variable_names.empty());
  auto miss = QueryDatabase(db_, "payroll(ada, 1)", symbols_);
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->empty());
}

TEST_F(QueryTest, RepeatedVariables) {
  EXPECT_EQ(Rows("edge(X, X)"), (std::vector<std::string>{"X=b"}));
}

TEST_F(QueryTest, AnonymousVariablesNotReported) {
  auto result = QueryDatabase(db_, "edge(X, _)", symbols_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->variable_names, (std::vector<std::string>{"X"}));
  // edge(a,b), edge(b,b), edge(b,c) -> X ∈ {a, b} after dedup.
  EXPECT_EQ(result->ToStrings(*symbols_),
            (std::vector<std::string>{"X=a", "X=b"}));
}

TEST_F(QueryTest, ZeroAryPredicate) {
  auto result = QueryDatabase(db_, "flag", symbols_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST_F(QueryTest, UnknownPredicateIsEmptyNotError) {
  auto result = QueryDatabase(db_, "never(X)", symbols_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST_F(QueryTest, ParseErrorsAreReported) {
  EXPECT_FALSE(QueryDatabase(db_, "payroll(X,", symbols_).ok());
  EXPECT_FALSE(QueryDatabase(db_, "", symbols_).ok());
  EXPECT_FALSE(QueryDatabase(db_, "p(X) q(X)", symbols_).ok());
}

TEST_F(QueryTest, DatabaseMatchesHelper) {
  EXPECT_TRUE(DatabaseMatches(db_, "emp(ada)", symbols_).value());
  EXPECT_TRUE(DatabaseMatches(db_, "payroll(_, 9000)", symbols_).value());
  EXPECT_FALSE(DatabaseMatches(db_, "emp(zed)", symbols_).value());
}

TEST_F(QueryTest, QueryAfterParkRun) {
  auto program = ParseProgram(
      "emp(X), !payroll(X, 9000) -> +underpaid(X).", symbols_);
  ASSERT_TRUE(program.ok());
  auto result = Park(*program, db_);
  ASSERT_TRUE(result.ok());
  auto rows = QueryDatabase(result->database, "underpaid(X)", symbols_);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->ToStrings(*symbols_),
            (std::vector<std::string>{"X=bob"}));
}

}  // namespace
}  // namespace park
