#include "engine/interpretation.h"

#include <gtest/gtest.h>

#include "lang/parser.h"

namespace park {
namespace {

class InterpretationTest : public ::testing::Test {
 protected:
  InterpretationTest()
      : symbols_(MakeSymbolTable()),
        base_(ParseDatabase("p(a). s(a).", symbols_).value()) {}

  GroundAtom Atom(std::string_view text) {
    return ParseGroundAtom(text, symbols_).value();
  }

  RuleGrounding G(int rule) { return RuleGrounding(rule, Tuple{}); }

  std::shared_ptr<SymbolTable> symbols_;
  Database base_;
};

TEST_F(InterpretationTest, PositiveValidity) {
  IInterpretation interp(&base_);
  // a ∈ I° → valid.
  EXPECT_TRUE(interp.IsValid(Atom("p(a)"), LiteralKind::kPositive));
  // absent everywhere → invalid.
  EXPECT_FALSE(interp.IsValid(Atom("p(b)"), LiteralKind::kPositive));
  // +a ∈ I⁺ → valid.
  interp.AddMarked(ActionKind::kInsert, Atom("p(b)"), G(0));
  EXPECT_TRUE(interp.IsValid(Atom("p(b)"), LiteralKind::kPositive));
  // NOTE: -a ∈ I⁻ does NOT invalidate a positive literal whose atom is
  // still in I° (the deletion is pending, not applied) — §4.2 verbatim.
  interp.AddMarked(ActionKind::kDelete, Atom("p(a)"), G(1));
  EXPECT_TRUE(interp.IsValid(Atom("p(a)"), LiteralKind::kPositive));
}

TEST_F(InterpretationTest, NegatedValidity) {
  IInterpretation interp(&base_);
  // Neither b nor +b present → ¬b valid (negation as failure).
  EXPECT_TRUE(interp.IsValid(Atom("p(b)"), LiteralKind::kNegated));
  // b ∈ I° → ¬b invalid.
  EXPECT_FALSE(interp.IsValid(Atom("p(a)"), LiteralKind::kNegated));
  // +b ∈ I⁺ → ¬b invalid.
  interp.AddMarked(ActionKind::kInsert, Atom("p(b)"), G(0));
  EXPECT_FALSE(interp.IsValid(Atom("p(b)"), LiteralKind::kNegated));
  // -b ∈ I⁻ → ¬b valid even though b ∈ I°.
  interp.AddMarked(ActionKind::kDelete, Atom("s(a)"), G(1));
  EXPECT_TRUE(interp.IsValid(Atom("s(a)"), LiteralKind::kNegated));
}

TEST_F(InterpretationTest, EventValidity) {
  IInterpretation interp(&base_);
  EXPECT_FALSE(interp.IsValid(Atom("p(a)"), LiteralKind::kEventInsert));
  EXPECT_FALSE(interp.IsValid(Atom("p(a)"), LiteralKind::kEventDelete));
  interp.AddMarked(ActionKind::kInsert, Atom("q(a)"), G(0));
  interp.AddMarked(ActionKind::kDelete, Atom("s(a)"), G(1));
  EXPECT_TRUE(interp.IsValid(Atom("q(a)"), LiteralKind::kEventInsert));
  EXPECT_FALSE(interp.IsValid(Atom("q(a)"), LiteralKind::kEventDelete));
  EXPECT_TRUE(interp.IsValid(Atom("s(a)"), LiteralKind::kEventDelete));
  // An unmarked base atom is not an event.
  EXPECT_FALSE(interp.IsValid(Atom("p(a)"), LiteralKind::kEventInsert));
}

TEST_F(InterpretationTest, ConsistencyTracking) {
  IInterpretation interp(&base_);
  EXPECT_TRUE(interp.IsConsistent());
  interp.AddMarked(ActionKind::kInsert, Atom("q(a)"), G(0));
  EXPECT_TRUE(interp.IsConsistent());
  interp.AddMarked(ActionKind::kDelete, Atom("q(a)"), G(1));
  EXPECT_FALSE(interp.IsConsistent());
  interp.ClearMarks();
  EXPECT_TRUE(interp.IsConsistent());
  EXPECT_EQ(interp.num_plus(), 0u);
  EXPECT_EQ(interp.num_minus(), 0u);
}

TEST_F(InterpretationTest, AddMarkedReturnsNewness) {
  IInterpretation interp(&base_);
  EXPECT_TRUE(interp.AddMarked(ActionKind::kInsert, Atom("q(a)"), G(0)));
  EXPECT_FALSE(interp.AddMarked(ActionKind::kInsert, Atom("q(a)"), G(1)));
  EXPECT_EQ(interp.num_plus(), 1u);
}

TEST_F(InterpretationTest, ProvenanceAccumulates) {
  IInterpretation interp(&base_);
  interp.AddMarked(ActionKind::kInsert, Atom("q(a)"), G(0));
  interp.AddMarked(ActionKind::kInsert, Atom("q(a)"), G(2));
  interp.AddMarked(ActionKind::kInsert, Atom("q(a)"), G(0));  // duplicate
  const auto* prov = interp.Provenance(ActionKind::kInsert, Atom("q(a)"));
  ASSERT_NE(prov, nullptr);
  EXPECT_EQ(prov->size(), 2u);
  EXPECT_EQ(interp.Provenance(ActionKind::kDelete, Atom("q(a)")), nullptr);
  interp.ClearMarks();
  EXPECT_EQ(interp.Provenance(ActionKind::kInsert, Atom("q(a)")), nullptr);
}

TEST_F(InterpretationTest, IncorporateAppliesMarks) {
  IInterpretation interp(&base_);
  interp.AddMarked(ActionKind::kInsert, Atom("q(b)"), G(0));
  interp.AddMarked(ActionKind::kDelete, Atom("s(a)"), G(1));
  Database result = interp.Incorporate();
  EXPECT_EQ(result.ToString(), "{p(a), q(b)}");
  // The base is untouched.
  EXPECT_EQ(base_.ToString(), "{p(a), s(a)}");
}

TEST_F(InterpretationTest, IncorporateOfDeleteAbsentAtomIsNoop) {
  IInterpretation interp(&base_);
  interp.AddMarked(ActionKind::kDelete, Atom("ghost(x)"), G(0));
  EXPECT_EQ(interp.Incorporate().ToString(), "{p(a), s(a)}");
}

TEST_F(InterpretationTest, RenderingOrdersUnmarkedPlusMinus) {
  IInterpretation interp(&base_);
  interp.AddMarked(ActionKind::kInsert, Atom("z(z)"), G(0));
  interp.AddMarked(ActionKind::kInsert, Atom("a(a)"), G(0));
  interp.AddMarked(ActionKind::kDelete, Atom("s(a)"), G(1));
  EXPECT_EQ(interp.SortedLiteralStrings(),
            (std::vector<std::string>{"p(a)", "s(a)", "+a(a)", "+z(z)",
                                      "-s(a)"}));
  EXPECT_EQ(interp.ToString(), "{p(a), s(a), +a(a), +z(z), -s(a)}");
}

}  // namespace
}  // namespace park
