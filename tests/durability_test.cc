// Durability: the Env boundary and its error mapping, fault injection,
// the checksummed journal format (sequence numbers, torn tails, CRC
// corruption), and ActiveDatabase::Open / Checkpoint recovery.
//
// The exhaustive crash-at-every-syscall harness lives in
// crash_point_test.cc; this file covers the targeted single-fault and
// corrupt-bytes cases.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "park/park.h"
#include "util/crc32.h"
#include "util/env.h"
#include "util/fault_env.h"
#include "util/string_util.h"

namespace park {
namespace {

/// Fresh directory per test, removed on teardown.
class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "park_durability_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  void WriteFile(const std::string& path, const std::string& contents) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
  }

  std::string ReadFile(const std::string& path) {
    auto contents = Env::Default()->ReadFileToString(path);
    EXPECT_TRUE(contents.ok()) << contents.status().ToString();
    return contents.ok() ? *contents : std::string();
  }

  std::string dir_;
};

// --- Env ------------------------------------------------------------------

TEST_F(DurabilityTest, EnvReadMissingFileIsNotFound) {
  auto contents = Env::Default()->ReadFileToString(Path("missing"));
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kNotFound);
}

TEST_F(DurabilityTest, EnvReadDirectoryIsInternalNotNotFound) {
  // The file EXISTS but cannot be read — this must never map to
  // kNotFound, or callers would mistake a damaged journal for a fresh one.
  auto contents = Env::Default()->ReadFileToString(dir_);
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kInternal);
}

TEST_F(DurabilityTest, EnvWritableFileTruncateAndAppendModes) {
  Env* env = Env::Default();
  std::string path = Path("file");
  {
    auto file = env->NewWritableFile(path, Env::WriteMode::kTruncate);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    ASSERT_TRUE((*file)->Append("hello ").ok());
    ASSERT_TRUE((*file)->Append("world").ok());
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  EXPECT_EQ(ReadFile(path), "hello world");
  {
    auto file = env->NewWritableFile(path, Env::WriteMode::kAppend);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("!").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  EXPECT_EQ(ReadFile(path), "hello world!");
  {
    auto file = env->NewWritableFile(path, Env::WriteMode::kTruncate);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  EXPECT_EQ(ReadFile(path), "");
}

TEST_F(DurabilityTest, EnvFileOps) {
  Env* env = Env::Default();
  std::string path = Path("file");
  WriteFile(path, "0123456789");

  EXPECT_TRUE(env->FileExists(path));
  EXPECT_FALSE(env->FileExists(Path("missing")));

  auto size = env->FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 10u);
  EXPECT_EQ(env->FileSize(Path("missing")).status().code(),
            StatusCode::kNotFound);

  ASSERT_TRUE(env->TruncateFile(path, 4).ok());
  EXPECT_EQ(ReadFile(path), "0123");

  std::string moved = Path("moved");
  ASSERT_TRUE(env->RenameFile(path, moved).ok());
  EXPECT_FALSE(env->FileExists(path));
  EXPECT_EQ(ReadFile(moved), "0123");

  // Removing a missing file is OK: the postcondition already holds.
  EXPECT_TRUE(env->RemoveFile(Path("missing")).ok());
  ASSERT_TRUE(env->RemoveFile(moved).ok());
  EXPECT_FALSE(env->FileExists(moved));

  // Creating an existing directory is OK too.
  EXPECT_TRUE(env->CreateDir(dir_).ok());
  std::string sub = Path("sub");
  ASSERT_TRUE(env->CreateDir(sub).ok());
  EXPECT_TRUE(std::filesystem::is_directory(sub));
}

TEST_F(DurabilityTest, AtomicWriteFileReplacesAndLeavesNoTemp) {
  Env* env = Env::Default();
  std::string path = Path("file");
  ASSERT_TRUE(AtomicWriteFile(env, "first", path, /*sync=*/false).ok());
  EXPECT_EQ(ReadFile(path), "first");
  ASSERT_TRUE(AtomicWriteFile(env, "second", path, /*sync=*/true).ok());
  EXPECT_EQ(ReadFile(path), "second");
  EXPECT_FALSE(env->FileExists(path + ".tmp"));
}

// --- FaultInjectingEnv ----------------------------------------------------

TEST_F(DurabilityTest, FaultEnvPassThroughCountsMutatingOps) {
  FaultInjectingEnv env(Env::Default());  // fault_at = -1: never fires
  std::string path = Path("file");
  auto file = env.NewWritableFile(path, Env::WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("data").ok());
  ASSERT_TRUE((*file)->Flush().ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(env.op_count(), 4);  // open, append, flush, close

  // Reads are not charged: crash consistency is about writes.
  EXPECT_TRUE(env.ReadFileToString(path).ok());
  EXPECT_TRUE(env.FileExists(path));
  EXPECT_TRUE(env.FileSize(path).ok());
  EXPECT_EQ(env.op_count(), 4);
  EXPECT_FALSE(env.crashed());
}

TEST_F(DurabilityTest, FaultEnvFailOpIsTransient) {
  FaultPlan plan;
  plan.fault_at = 0;
  plan.kind = FaultPlan::Kind::kFailOp;
  FaultInjectingEnv env(Env::Default(), plan);
  std::string path = Path("file");

  EXPECT_FALSE(env.NewWritableFile(path, Env::WriteMode::kTruncate).ok());
  EXPECT_FALSE(env.crashed());

  // The very next attempt succeeds: the fault was a one-shot.
  auto file = env.NewWritableFile(path, Env::WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("ok").ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(ReadFile(path), "ok");
}

TEST_F(DurabilityTest, FaultEnvShortWritePersistsPrefix) {
  FaultPlan plan;
  plan.fault_at = 1;  // op 0 = open, op 1 = the append below
  plan.kind = FaultPlan::Kind::kShortWrite;
  plan.torn_write_percent = 50;
  FaultInjectingEnv env(Env::Default(), plan);
  std::string path = Path("file");

  auto file = env.NewWritableFile(path, Env::WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  Status torn = (*file)->Append("0123456789");
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(ReadFile(path), "01234");  // half the payload reached the file

  // The env keeps working after the short write.
  ASSERT_TRUE((*file)->Append("ab").ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(ReadFile(path), "01234ab");
  EXPECT_FALSE(env.crashed());
}

TEST_F(DurabilityTest, FaultEnvCrashIsPermanent) {
  FaultPlan plan;
  plan.fault_at = 1;
  plan.kind = FaultPlan::Kind::kCrash;
  plan.torn_write_percent = 0;
  FaultInjectingEnv env(Env::Default(), plan);
  std::string path = Path("file");

  auto file = env.NewWritableFile(path, Env::WriteMode::kTruncate);
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE((*file)->Append("data").ok());
  EXPECT_TRUE(env.crashed());
  EXPECT_EQ(ReadFile(path), "");  // torn_write_percent = 0: nothing landed

  // The "process" is dead: every later operation fails, reads included.
  EXPECT_FALSE((*file)->Flush().ok());
  EXPECT_FALSE((*file)->Close().ok());
  EXPECT_FALSE(env.ReadFileToString(path).ok());
  EXPECT_FALSE(env.FileExists(path));
  EXPECT_FALSE(env.RemoveFile(path).ok());
  EXPECT_FALSE(env.CreateDir(Path("sub")).ok());
}

// --- journal format -------------------------------------------------------

/// Renders one journal record in the on-disk format with a correct CRC
/// footer (mirrors TransactionJournal::Append).
std::string MakeRecord(uint64_t seq,
                       const std::vector<std::string>& update_lines) {
  std::string payload = std::to_string(seq) + "\n";
  for (const std::string& line : update_lines) payload += line + "\n";
  std::string record = "begin " + std::to_string(seq) + "\n";
  for (const std::string& line : update_lines) record += line + "\n";
  record += "commit " + std::to_string(seq) + " " +
            StrFormat("crc=%08x", Crc32(payload)) + "\n";
  return record;
}

/// MakeRecord with the last CRC hex digit flipped: framing intact, sum
/// wrong — the shape left by bit rot rather than a torn write.
std::string MakeCorruptCrcRecord(uint64_t seq,
                                 const std::vector<std::string>& lines) {
  std::string record = MakeRecord(seq, lines);
  char& digit = record[record.size() - 2];
  digit = (digit == '0') ? '1' : '0';
  return record;
}

UpdateSet ParseUpdates(const std::vector<std::string>& texts,
                       const std::shared_ptr<SymbolTable>& symbols) {
  UpdateSet updates;
  for (const std::string& text : texts) {
    EXPECT_TRUE(updates.AddParsed(text, symbols).ok());
  }
  return updates;
}

TEST_F(DurabilityTest, JournalSequenceNumbersPersistAcrossReopen) {
  auto symbols = MakeSymbolTable();
  std::string path = Path("journal");
  {
    auto journal = TransactionJournal::Open(path);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    EXPECT_EQ(journal->last_seq(), 0u);
    ASSERT_TRUE(journal->Append(ParseUpdates({"+a(1)"}, symbols),
                                *symbols).ok());
    ASSERT_TRUE(journal->Append(ParseUpdates({"+b(2)"}, symbols),
                                *symbols).ok());
    EXPECT_EQ(journal->last_seq(), 2u);
  }
  {
    // Reopen: numbering resumes after the last record on disk.
    auto journal = TransactionJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    EXPECT_EQ(journal->last_seq(), 2u);
    ASSERT_TRUE(journal->Append(ParseUpdates({"+c(3)"}, symbols),
                                *symbols).ok());
    EXPECT_EQ(journal->last_seq(), 3u);
  }
  auto records = TransactionJournal::ReadRecords(path, symbols);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 3u);
  for (size_t i = 0; i < records->size(); ++i) {
    EXPECT_EQ((*records)[i].seq, i + 1);
  }
}

TEST_F(DurabilityTest, JournalFirstSeqStartsCheckpointedJournal) {
  // A checkpoint at sequence 9 reopens the journal with first_seq = 10;
  // the empty journal must then report last_seq() == 9 and number its
  // first record 10.
  auto symbols = MakeSymbolTable();
  std::string path = Path("journal");
  JournalOptions options;
  options.first_seq = 10;
  auto journal = TransactionJournal::Open(path, options);
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ(journal->last_seq(), 9u);
  ASSERT_TRUE(journal->Append(ParseUpdates({"+a(1)"}, symbols),
                              *symbols).ok());
  EXPECT_EQ(journal->last_seq(), 10u);

  auto records = TransactionJournal::ReadRecords(path, symbols);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].seq, 10u);
}

TEST_F(DurabilityTest, JournalFailedAppendHealsFileAndRetrySucceeds) {
  auto symbols = MakeSymbolTable();

  // Measure how many mutating ops open + one append cost, so the fault
  // can target the second append's write precisely.
  int64_t ops_before_second_append = 0;
  {
    FaultInjectingEnv counter(Env::Default());
    JournalOptions options;
    options.env = &counter;
    auto journal = TransactionJournal::Open(Path("probe"), options);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append(ParseUpdates({"+a(1)"}, symbols),
                                *symbols).ok());
    ops_before_second_append = counter.op_count();
  }

  FaultPlan plan;
  plan.fault_at = ops_before_second_append;
  plan.kind = FaultPlan::Kind::kShortWrite;
  plan.torn_write_percent = 50;  // tear mid-record
  FaultInjectingEnv env(Env::Default(), plan);
  JournalOptions options;
  options.env = &env;
  std::string path = Path("journal");

  auto journal = TransactionJournal::Open(path, options);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(journal->Append(ParseUpdates({"+a(1)"}, symbols),
                              *symbols).ok());

  // The torn append fails but heals the file back to the durable prefix…
  Status torn = journal->Append(ParseUpdates({"+b(2)"}, symbols), *symbols);
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(journal->last_seq(), 1u);

  // …so the retry lands cleanly, with the sequence number reused.
  ASSERT_TRUE(journal->Append(ParseUpdates({"+b(2)"}, symbols),
                              *symbols).ok());
  EXPECT_EQ(journal->last_seq(), 2u);

  bool torn_tail = false;
  auto records =
      TransactionJournal::ReadRecords(path, symbols, nullptr, &torn_tail);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_FALSE(torn_tail);  // healing left no damage behind
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].updates.ToString(*symbols), "{+a(1)}");
  EXPECT_EQ((*records)[1].updates.ToString(*symbols), "{+b(2)}");
}

TEST_F(DurabilityTest, JournalUnhealedAppendPoisonsHandleUntilReopen) {
  auto symbols = MakeSymbolTable();

  int64_t ops_before_second_append = 0;
  {
    FaultInjectingEnv counter(Env::Default());
    JournalOptions options;
    options.env = &counter;
    auto journal = TransactionJournal::Open(Path("probe"), options);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append(ParseUpdates({"+a(1)"}, symbols),
                                *symbols).ok());
    ops_before_second_append = counter.op_count();
  }

  // A crash tears the append AND defeats the healing truncation; the
  // handle must then refuse to write over the torn bytes.
  FaultPlan plan;
  plan.fault_at = ops_before_second_append;
  plan.kind = FaultPlan::Kind::kCrash;
  plan.torn_write_percent = 50;
  FaultInjectingEnv env(Env::Default(), plan);
  JournalOptions options;
  options.env = &env;
  std::string path = Path("journal");
  {
    auto journal = TransactionJournal::Open(path, options);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append(ParseUpdates({"+a(1)"}, symbols),
                                *symbols).ok());
    EXPECT_FALSE(journal->Append(ParseUpdates({"+b(2)"}, symbols),
                                 *symbols).ok());
    Status refused =
        journal->Append(ParseUpdates({"+c(3)"}, symbols), *symbols);
    EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
  }

  // Reopening (with a healthy filesystem) truncates the torn tail and
  // resumes exactly after the last durable record.
  auto journal = TransactionJournal::Open(path);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_EQ(journal->last_seq(), 1u);
  ASSERT_TRUE(journal->Append(ParseUpdates({"+b(2)"}, symbols),
                              *symbols).ok());
  auto records = TransactionJournal::ReadRecords(path, symbols);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
}

TEST_F(DurabilityTest, JournalUnreadableFileIsAnErrorNotEmpty) {
  // A journal that exists but cannot be read (here: the path is a
  // directory) must never be mistaken for a fresh journal.
  auto read = TransactionJournal::ReadRecords(dir_, MakeSymbolTable());
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInternal);

  auto open = TransactionJournal::Open(dir_);
  ASSERT_FALSE(open.ok());
  EXPECT_EQ(open.status().code(), StatusCode::kInternal);
}

TEST_F(DurabilityTest, JournalMissingPathIsAFreshJournal) {
  // Missing file AND missing directory are both ENOENT: a fresh journal
  // for reads (writers create the file; Open of a missing directory is
  // caught by ActiveDatabase::Open's CreateDir instead).
  auto records = TransactionJournal::ReadRecords(Path("missing"),
                                                 MakeSymbolTable());
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
  records = TransactionJournal::ReadRecords(Path("no_dir") + "/journal",
                                            MakeSymbolTable());
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

// --- table-driven torn/corrupt journals -----------------------------------

struct CorruptJournalCase {
  const char* name;
  std::string contents;
  /// Negative: expect kDataLoss. Otherwise: expected record count.
  int want_records;
  bool want_torn_tail;
};

TEST_F(DurabilityTest, CorruptJournalTable) {
  const std::string valid1 = MakeRecord(1, {"+a(1)"});
  const std::string valid2 = MakeRecord(2, {"+b(2)"});
  const CorruptJournalCase kCases[] = {
      {"empty file", "", 0, false},
      {"single valid record", valid1, 1, false},
      {"torn tail: header only", valid1 + "begin 2\n", 1, true},
      {"torn tail: no commit line", valid1 + "begin 2\n+b(2)\n", 1, true},
      {"torn tail: unterminated line", valid1 + "begin 2\n+b(", 1, true},
      {"torn tail: partial magic", valid1 + "beg", 1, true},
      {"corrupt crc in tail record",
       valid1 + MakeCorruptCrcRecord(2, {"+b(2)"}), 1, true},
      {"corrupt crc mid-journal",
       MakeCorruptCrcRecord(1, {"+a(1)"}) + valid2, -1, false},
      {"truncated record mid-journal", "begin 1\n+a(1)\n" + valid2, -1,
       false},
      {"duplicate begin at tail", "begin 1\nbegin 1\n+a(1)\n", 0, true},
      {"duplicate begin hides a valid record", "begin 1\n" + valid1, -1,
       false},
      {"sequence gap", valid1 + MakeRecord(3, {"+c(3)"}), -1, false},
      {"sequence repeat", valid1 + MakeRecord(1, {"+z(9)"}), -1, false},
      {"update line outside any record", "+a(1)\n", -1, false},
      {"garbage before a valid record", "junk\n" + valid1, -1, false},
  };

  for (const CorruptJournalCase& test : kCases) {
    SCOPED_TRACE(test.name);
    std::string path = Path("journal");
    WriteFile(path, test.contents);
    bool torn_tail = false;
    auto records = TransactionJournal::ReadRecords(
        path, MakeSymbolTable(), nullptr, &torn_tail);
    if (test.want_records < 0) {
      ASSERT_FALSE(records.ok());
      EXPECT_EQ(records.status().code(), StatusCode::kDataLoss);
    } else {
      ASSERT_TRUE(records.ok()) << records.status().ToString();
      EXPECT_EQ(records->size(),
                static_cast<size_t>(test.want_records));
      EXPECT_EQ(torn_tail, test.want_torn_tail);
    }
  }
}

TEST_F(DurabilityTest, OpenTruncatesTornTailOnDisk) {
  // TransactionJournal::Open doesn't just skip the torn tail — it cuts it
  // off, so the next append cannot bury damage mid-journal.
  std::string path = Path("journal");
  const std::string valid = MakeRecord(1, {"+a(1)"});
  WriteFile(path, valid + "begin 2\n+b(");
  auto journal = TransactionJournal::Open(path);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_EQ(journal->last_seq(), 1u);
  EXPECT_EQ(ReadFile(path), valid);
}

// --- ActiveDatabase::Open / Checkpoint ------------------------------------

constexpr char kRules[] = R"(
  onboard: +emp(X) -> +active(X).
  cleanup: emp(X), !active(X), payroll(X, S) -> -payroll(X, S).
)";

ActiveDatabase::OpenParams DirParams() {
  ActiveDatabase::OpenParams params;
  params.rules = kRules;
  return params;
}

Status CommitInsert(ActiveDatabase& db, const std::string& predicate,
                    const std::vector<std::string>& args) {
  Transaction tx = db.Begin();
  tx.Insert(predicate, args);
  return std::move(tx).Commit().status();
}

TEST_F(DurabilityTest, OpenCommitReopenCycle) {
  std::string db_dir = Path("db");
  std::string state;
  {
    auto db = ActiveDatabase::Open(db_dir, DirParams());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ(db->dir(), db_dir);
    EXPECT_EQ(db->durable_seq(), 0u);
    ASSERT_TRUE(CommitInsert(*db, "emp", {"ada"}).ok());
    ASSERT_TRUE(CommitInsert(*db, "emp", {"bob"}).ok());
    EXPECT_EQ(db->durable_seq(), 2u);
    state = db->database().ToString();
  }
  {
    auto db = ActiveDatabase::Open(db_dir, DirParams());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ(db->database().ToString(), state);
    EXPECT_EQ(db->durable_seq(), 2u);
    EXPECT_TRUE(db->Contains(
        ParseGroundAtom("active(ada)", db->symbols()).value()));
  }
}

TEST_F(DurabilityTest, OpenWithMissingParentDirectoryFails) {
  auto db = ActiveDatabase::Open(Path("no_parent") + "/a/b", DirParams());
  ASSERT_FALSE(db.ok());
  EXPECT_NE(db.status().code(), StatusCode::kDataLoss);
}

TEST_F(DurabilityTest, CheckpointTruncatesJournalAndPreservesState) {
  std::string db_dir = Path("db");
  std::string state;
  {
    auto db = ActiveDatabase::Open(db_dir, DirParams());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(CommitInsert(*db, "emp", {"ada"}).ok());
    ASSERT_TRUE(CommitInsert(*db, "emp", {"bob"}).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    EXPECT_EQ(db->durable_seq(), 2u);  // the watermark carries the seq

    // The journal was truncated; only post-checkpoint records remain.
    auto records = TransactionJournal::ReadRecords(db_dir + "/journal.log",
                                                   db->symbols());
    ASSERT_TRUE(records.ok());
    EXPECT_TRUE(records->empty());

    ASSERT_TRUE(CommitInsert(*db, "emp", {"eve"}).ok());
    EXPECT_EQ(db->durable_seq(), 3u);
    records = TransactionJournal::ReadRecords(db_dir + "/journal.log",
                                              db->symbols());
    ASSERT_TRUE(records.ok());
    ASSERT_EQ(records->size(), 1u);
    EXPECT_EQ((*records)[0].seq, 3u);
    state = db->database().ToString();

    // No checkpoint debris left behind.
    EXPECT_FALSE(Env::Default()->FileExists(db_dir + "/checkpoint.pending"));
    EXPECT_TRUE(Env::Default()->FileExists(db_dir + "/snapshot.facts"));
  }
  {
    auto db = ActiveDatabase::Open(db_dir, DirParams());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ(db->database().ToString(), state);
    EXPECT_EQ(db->durable_seq(), 3u);
  }
}

TEST_F(DurabilityTest, CheckpointIsRepeatable) {
  std::string db_dir = Path("db");
  auto db = ActiveDatabase::Open(db_dir, DirParams());
  ASSERT_TRUE(db.ok());
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(
        CommitInsert(*db, "emp", {"e" + std::to_string(round)}).ok());
    ASSERT_TRUE(db->Checkpoint().ok()) << "round " << round;
  }
  EXPECT_EQ(db->durable_seq(), 3u);
  std::string state = db->database().ToString();

  auto reopened = ActiveDatabase::Open(db_dir, DirParams());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->database().ToString(), state);
  EXPECT_EQ(reopened->durable_seq(), 3u);
}

TEST_F(DurabilityTest, CheckpointRequiresOpen) {
  ActiveDatabase db;
  EXPECT_EQ(db.Checkpoint().code(), StatusCode::kFailedPrecondition);
}

TEST_F(DurabilityTest, InterruptedCheckpointDebrisIsSwept) {
  std::string db_dir = Path("db");
  std::string state;
  {
    auto db = ActiveDatabase::Open(db_dir, DirParams());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(CommitInsert(*db, "emp", {"ada"}).ok());
    state = db->database().ToString();
  }
  // Simulate a crash between a checkpoint's marker write and its
  // completion: marker and temp snapshot left behind, real files intact.
  WriteFile(db_dir + "/checkpoint.pending", "last_seq=1\n");
  WriteFile(db_dir + "/snapshot.facts.tmp", "half a snapsh");
  {
    auto db = ActiveDatabase::Open(db_dir, DirParams());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ(db->database().ToString(), state);
  }
  EXPECT_FALSE(Env::Default()->FileExists(db_dir + "/checkpoint.pending"));
  EXPECT_FALSE(Env::Default()->FileExists(db_dir + "/snapshot.facts.tmp"));
}

TEST_F(DurabilityTest, StaleJournalRecordsBelowWatermarkAreSkipped) {
  // A checkpoint interrupted after the snapshot rename but before the
  // journal truncation leaves records at or below the watermark behind;
  // recovery must not double-apply them.
  std::string db_dir = Path("db");
  std::string journal_backup;
  std::string state;
  {
    auto db = ActiveDatabase::Open(db_dir, DirParams());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(CommitInsert(*db, "emp", {"ada"}).ok());
    ASSERT_TRUE(CommitInsert(*db, "emp", {"bob"}).ok());
    journal_backup = ReadFile(db_dir + "/journal.log");
    ASSERT_TRUE(db->Checkpoint().ok());
    state = db->database().ToString();
  }
  // Put the pre-checkpoint journal back, as if truncation never happened.
  WriteFile(db_dir + "/journal.log", journal_backup);
  auto db = ActiveDatabase::Open(db_dir, DirParams());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->database().ToString(), state);
  EXPECT_EQ(db->durable_seq(), 2u);
}

TEST_F(DurabilityTest, MidJournalCorruptionFailsOpenWithDataLoss) {
  std::string db_dir = Path("db");
  {
    auto db = ActiveDatabase::Open(db_dir, DirParams());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(CommitInsert(*db, "emp", {"ada"}).ok());
    ASSERT_TRUE(CommitInsert(*db, "emp", {"bob"}).ok());
  }
  // Flip one hex digit of record 1's CRC: record 2 is still valid after
  // the damage, so this is data loss, not a droppable tail.
  std::string journal_path = db_dir + "/journal.log";
  std::string contents = ReadFile(journal_path);
  size_t crc_pos = contents.find("crc=");
  ASSERT_NE(crc_pos, std::string::npos);
  char& digit = contents[crc_pos + 4];
  digit = (digit == '0') ? '1' : '0';
  WriteFile(journal_path, contents);

  auto db = ActiveDatabase::Open(db_dir, DirParams());
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kDataLoss);
}

TEST_F(DurabilityTest, MalformedSnapshotHeaderIsDataLoss) {
  std::string db_dir = Path("db");
  {
    auto db = ActiveDatabase::Open(db_dir, DirParams());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(CommitInsert(*db, "emp", {"ada"}).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  std::string snapshot_path = db_dir + "/snapshot.facts";
  std::string contents = ReadFile(snapshot_path);
  ASSERT_EQ(contents.rfind("# park-snapshot last_seq=", 0), 0u);
  WriteFile(snapshot_path, "# park-snapshot last_seq=banana\nemp(ada).\n");

  auto db = ActiveDatabase::Open(db_dir, DirParams());
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kDataLoss);
}

// --- replay determinism ---------------------------------------------------

TEST_F(DurabilityTest, ReplayIsDeterministicAcrossRepeatedRecoveries) {
  // Recovery re-RUNS the rules instead of re-reading materialized state,
  // so it leans entirely on the PARK semantics being deterministic
  // (paper §3) given the same program and policy — including through
  // conflicts the policy resolved in the original run.
  ActiveDatabase::OpenParams params;
  params.rules = R"(
    grant: +emp(X) -> +badge(X).
    deny: emp(X), contractor(X) -> -badge(X).
  )";
  std::string db_dir = Path("db");
  std::string state;
  {
    auto db = ActiveDatabase::Open(db_dir, params);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    Transaction tx = db->Begin();
    tx.Insert("emp", {"ada"});
    tx.Insert("contractor", {"ada"});  // conflict over badge(ada)
    auto report = std::move(tx).Commit();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_GT(report->stats.conflicts_resolved, 0u);
    ASSERT_TRUE(CommitInsert(*db, "emp", {"bob"}).ok());
    state = db->database().ToString();
  }
  for (int attempt = 0; attempt < 3; ++attempt) {
    SCOPED_TRACE("recovery attempt " + std::to_string(attempt));
    auto db = ActiveDatabase::Open(db_dir, params);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ(db->database().ToString(), state);
    EXPECT_EQ(db->durable_seq(), 2u);
  }
}

}  // namespace
}  // namespace park
