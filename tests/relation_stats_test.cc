// RelationStats: the counting-sketch distinct estimator that feeds the
// cost-based planner (docs/PLANNER.md). Pins the properties the planner
// relies on: estimates stay within bounds, deletions are exact (the
// sketch is a pure function of the stored multiset, so churn never
// drifts it), Clone carries statistics along, and statistics rebuilt
// from a checkpoint + journal recovery match the pre-crash ones.

#include "storage/relation_stats.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "park/park.h"
#include "storage/relation.h"

namespace park {
namespace {

Tuple T2(int64_t a, int64_t b) { return Tuple{Value::Int(a), Value::Int(b)}; }

TEST(RelationStatsTest, EmptyRelationIsExactZero) {
  Relation rel(2);
  EXPECT_EQ(rel.stats().rows(), 0u);
  EXPECT_EQ(rel.stats().DistinctEstimate(0), 0.0);
  EXPECT_EQ(rel.stats().SelectivityRows(0), 0.0);
}

TEST(RelationStatsTest, RowsMirrorRelationSize) {
  Relation rel(2);
  for (int i = 0; i < 20; ++i) rel.Insert(T2(i, i % 3));
  EXPECT_EQ(rel.stats().rows(), rel.size());
  rel.Insert(T2(0, 0));  // duplicate: no-op for the set, so for the stats
  EXPECT_EQ(rel.stats().rows(), 20u);
  rel.Erase(T2(0, 0));
  EXPECT_EQ(rel.stats().rows(), 19u);
}

TEST(RelationStatsTest, DistinctEstimateWithinBounds) {
  // Column 0 holds 200 distinct values, column 1 only 4. The estimate
  // must stay in [1, rows] and preserve the magnitude gap the planner
  // keys on. Linear counting with 512 buckets is within a few percent
  // at these counts; allow a generous ±25% so the test pins behaviour,
  // not the sketch's exact error curve.
  Relation rel(2);
  for (int i = 0; i < 200; ++i) rel.Insert(T2(i, i % 4));
  const RelationStats& stats = rel.stats();
  double d0 = stats.DistinctEstimate(0);
  double d1 = stats.DistinctEstimate(1);
  EXPECT_GE(d0, 1.0);
  EXPECT_LE(d0, static_cast<double>(stats.rows()));
  EXPECT_NEAR(d0, 200.0, 50.0);
  EXPECT_GE(d1, 1.0);
  EXPECT_NEAR(d1, 4.0, 1.0);
  // Selectivity follows: probing the skewed column yields ~rows/4,
  // probing the near-key column ~1.
  EXPECT_GT(stats.SelectivityRows(1), stats.SelectivityRows(0));
}

TEST(RelationStatsTest, MixedChurnKeepsEstimateInBounds) {
  // Interleaved insert/delete waves: after every wave the estimate must
  // remain in [1, rows] — the invariant the planner's cost model needs.
  Relation rel(2);
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 100; ++i) rel.Insert(T2(wave * 100 + i, i % 7));
    for (int i = 0; i < 50; ++i) rel.Erase(T2(wave * 100 + i, i % 7));
    const RelationStats& stats = rel.stats();
    ASSERT_EQ(stats.rows(), rel.size());
    for (int c = 0; c < 2; ++c) {
      double d = stats.DistinctEstimate(c);
      ASSERT_GE(d, 1.0) << "wave " << wave << " column " << c;
      ASSERT_LE(d, static_cast<double>(stats.rows()))
          << "wave " << wave << " column " << c;
    }
  }
}

TEST(RelationStatsTest, DeletionIsExact) {
  // The sketch stores exact multiset counts, so insert-then-erase
  // returns the estimate to exactly its prior value — no drift, ever.
  Relation rel(2);
  for (int i = 0; i < 50; ++i) rel.Insert(T2(i, i % 5));
  double before0 = rel.stats().DistinctEstimate(0);
  double before1 = rel.stats().DistinctEstimate(1);
  for (int i = 1000; i < 1400; ++i) rel.Insert(T2(i, i));
  for (int i = 1000; i < 1400; ++i) rel.Erase(T2(i, i));
  EXPECT_EQ(rel.stats().DistinctEstimate(0), before0);
  EXPECT_EQ(rel.stats().DistinctEstimate(1), before1);
  EXPECT_EQ(rel.stats().rows(), 50u);
}

TEST(RelationStatsTest, StatsAreAPureFunctionOfTheMultiset) {
  // Two relations reaching the same tuple set along different
  // insert/delete histories report identical statistics — the property
  // behind "identical databases give identical plans".
  Relation a(2);
  Relation b(2);
  for (int i = 0; i < 30; ++i) a.Insert(T2(i, i % 3));
  for (int i = 29; i >= 0; --i) b.Insert(T2(i, i % 3));
  for (int i = 500; i < 600; ++i) b.Insert(T2(i, i));
  for (int i = 500; i < 600; ++i) b.Erase(T2(i, i));
  EXPECT_EQ(a.stats().rows(), b.stats().rows());
  EXPECT_EQ(a.stats().DistinctEstimate(0), b.stats().DistinctEstimate(0));
  EXPECT_EQ(a.stats().DistinctEstimate(1), b.stats().DistinctEstimate(1));
}

TEST(RelationStatsTest, CloneCarriesStatistics) {
  Relation rel(2);
  for (int i = 0; i < 40; ++i) rel.Insert(T2(i, i % 2));
  Relation copy = rel.Clone();
  EXPECT_EQ(copy.stats().rows(), rel.stats().rows());
  EXPECT_EQ(copy.stats().DistinctEstimate(0), rel.stats().DistinctEstimate(0));
  EXPECT_EQ(copy.stats().DistinctEstimate(1), rel.stats().DistinctEstimate(1));
  // And the copy evolves independently.
  copy.Insert(T2(1000, 0));
  EXPECT_EQ(rel.stats().rows(), 40u);
  EXPECT_EQ(copy.stats().rows(), 41u);
}

// --- durability interplay --------------------------------------------------
//
// Statistics are not persisted; they are rebuilt incrementally as
// recovery replays the checkpoint snapshot and journal into the live
// Database. Because the sketch is a pure function of the stored
// multiset, the rebuilt statistics match the pre-shutdown ones exactly.

class RelationStatsRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "park_relation_stats_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  static ActiveDatabase::OpenParams Params() {
    ActiveDatabase::OpenParams params;
    params.rules = "onboard: +emp(X, Y) -> +active(X).";
    return params;
  }

  static Status CommitInsert(ActiveDatabase& db, const std::string& pred,
                             const std::vector<std::string>& args) {
    Transaction tx = db.Begin();
    tx.Insert(pred, args);
    return std::move(tx).Commit().status();
  }

  std::string dir_;
};

TEST_F(RelationStatsRecoveryTest, StatsSurviveCheckpointAndRecovery) {
  std::string db_dir = dir_ + "/db";
  size_t rows_before = 0;
  double distinct_before = 0;
  {
    auto db = ActiveDatabase::Open(db_dir, Params());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(CommitInsert(*db, "emp",
                               {"e" + std::to_string(i),
                                "dept" + std::to_string(i % 3)})
                      .ok());
    }
    ASSERT_TRUE(db->Checkpoint().ok());
    // A post-checkpoint commit so recovery exercises snapshot + journal.
    ASSERT_TRUE(CommitInsert(*db, "emp", {"e99", "dept0"}).ok());
    PredicateId emp = db->symbols()->InternPredicate("emp", 2);
    const Relation* rel = db->database().GetRelation(emp);
    ASSERT_NE(rel, nullptr);
    rows_before = rel->stats().rows();
    distinct_before = rel->stats().DistinctEstimate(1);
    EXPECT_EQ(rows_before, 13u);
  }
  {
    auto db = ActiveDatabase::Open(db_dir, Params());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    PredicateId emp = db->symbols()->InternPredicate("emp", 2);
    const Relation* rel = db->database().GetRelation(emp);
    ASSERT_NE(rel, nullptr);
    EXPECT_EQ(rel->stats().rows(), rows_before);
    EXPECT_EQ(rel->stats().DistinctEstimate(1), distinct_before);
  }
}

}  // namespace
}  // namespace park
