#include "util/random.h"

#include <gtest/gtest.h>

#include <set>

namespace park {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(99);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesP) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20'000; ++i) {
    if (rng.Bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 20'000.0, 0.25, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(3);
  std::vector<int> v(64);
  for (int i = 0; i < 64; ++i) v[static_cast<size_t>(i)] = i;
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);
}

}  // namespace
}  // namespace park
