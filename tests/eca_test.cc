// UpdateSet and the ECA entry points (PARK(D, P, U), P_U construction).

#include "eca/update.h"

#include <gtest/gtest.h>

#include "lang/printer.h"
#include "test_util.h"

namespace park {
namespace {

using ::park::testing_util::MustParseDatabase;
using ::park::testing_util::MustParseProgram;

class UpdateSetTest : public ::testing::Test {
 protected:
  UpdateSetTest() : symbols_(MakeSymbolTable()) {}

  GroundAtom Atom(std::string_view text) {
    return ParseGroundAtom(text, symbols_).value();
  }

  std::shared_ptr<SymbolTable> symbols_;
};

TEST_F(UpdateSetTest, AddAndContains) {
  UpdateSet u;
  u.AddInsert(Atom("p(a)")).AddDelete(Atom("q(b)"));
  EXPECT_EQ(u.size(), 2u);
  EXPECT_TRUE(u.Contains(ActionKind::kInsert, Atom("p(a)")));
  EXPECT_FALSE(u.Contains(ActionKind::kDelete, Atom("p(a)")));
  EXPECT_TRUE(u.Contains(ActionKind::kDelete, Atom("q(b)")));
}

TEST_F(UpdateSetTest, DuplicatesIgnored) {
  UpdateSet u;
  u.AddInsert(Atom("p(a)"));
  u.AddInsert(Atom("p(a)"));
  EXPECT_EQ(u.size(), 1u);
  // +p(a) and -p(a) are distinct updates (a conflicting transaction).
  u.AddDelete(Atom("p(a)"));
  EXPECT_EQ(u.size(), 2u);
}

TEST_F(UpdateSetTest, AddParsed) {
  UpdateSet u;
  ASSERT_TRUE(u.AddParsed("+q(b)", symbols_).ok());
  ASSERT_TRUE(u.AddParsed("  -payroll(john, 5000) ", symbols_).ok());
  EXPECT_EQ(u.ToString(*symbols_), "{+q(b), -payroll(john, 5000)}");
  EXPECT_FALSE(u.AddParsed("q(b)", symbols_).ok());
  EXPECT_FALSE(u.AddParsed("", symbols_).ok());
  EXPECT_FALSE(u.AddParsed("+q(X)", symbols_).ok());
}

TEST_F(UpdateSetTest, ClearAndEmpty) {
  UpdateSet u;
  EXPECT_TRUE(u.empty());
  u.AddInsert(Atom("p"));
  EXPECT_FALSE(u.empty());
  u.clear();
  EXPECT_TRUE(u.empty());
}

class ProgramWithUpdatesTest : public ::testing::Test {
 protected:
  ProgramWithUpdatesTest() : symbols_(MakeSymbolTable()) {}
  std::shared_ptr<SymbolTable> symbols_;
};

TEST_F(ProgramWithUpdatesTest, SeedsBecomeBodylessRules) {
  Program program = MustParseProgram("p(X) -> +q(X).", symbols_);
  std::vector<Update> updates{
      {ActionKind::kInsert, ParseGroundAtom("q(b)", symbols_).value()},
      {ActionKind::kDelete, ParseGroundAtom("s(a)", symbols_).value()}};
  auto extended = ProgramWithUpdates(program, updates);
  ASSERT_TRUE(extended.ok());
  ASSERT_EQ(extended->size(), 3u);
  EXPECT_EQ(RuleToString(extended->rule(1), *symbols_), "-> +q(b).");
  EXPECT_EQ(RuleToString(extended->rule(2), *symbols_), "-> -s(a).");
  // The original program is untouched.
  EXPECT_EQ(program.size(), 1u);
}

TEST_F(ProgramWithUpdatesTest, EmptyUpdatesIsPlainClone) {
  Program program = MustParseProgram("p -> +q.", symbols_);
  auto extended = ProgramWithUpdates(program, {});
  ASSERT_TRUE(extended.ok());
  EXPECT_EQ(extended->size(), 1u);
}

TEST(EcaSemanticsTest, UpdateAloneAppliesWithoutRules) {
  auto symbols = MakeSymbolTable();
  Program program(symbols);
  Database db = MustParseDatabase("p(a).", symbols);
  std::vector<Update> updates{
      {ActionKind::kInsert, ParseGroundAtom("q(b)", symbols).value()},
      {ActionKind::kDelete, ParseGroundAtom("p(a)", symbols).value()}};
  auto result = Park(db, program, updates);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->database.ToString(), "{q(b)}");
}

TEST(EcaSemanticsTest, ConflictingTransactionResolvedByPolicy) {
  // +x and -x in the same transaction U: the two seed rules conflict and
  // SELECT decides, exactly like any rule/rule conflict.
  auto symbols = MakeSymbolTable();
  Program program(symbols);
  Database db = MustParseDatabase("p.", symbols);
  std::vector<Update> updates{
      {ActionKind::kInsert, ParseGroundAtom("x", symbols).value()},
      {ActionKind::kDelete, ParseGroundAtom("x", symbols).value()}};
  auto inertia = Park(db, program, updates);
  ASSERT_TRUE(inertia.ok());
  EXPECT_EQ(inertia->database.ToString(), "{p}");  // x ∉ D stays absent

  ParkOptions insert_wins;
  insert_wins.policy = MakeAlwaysInsertPolicy();
  auto forced = Park(db, program, updates, insert_wins);
  ASSERT_TRUE(forced.ok());
  EXPECT_EQ(forced->database.ToString(), "{p, x}");
}

TEST(EcaSemanticsTest, EventChainsAcrossRules) {
  // A deletion event raised by a rule triggers another ECA rule, which
  // triggers a third — a three-stage cascade.
  constexpr char kProgram[] = R"(
    r1: retire(X), emp(X) -> -emp(X).
    r2: -emp(X) -> -badge(X).
    r3: -badge(X) -> +offboarded(X).
  )";
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(kProgram, symbols);
  Database db =
      MustParseDatabase("emp(a). badge(a). emp(b). badge(b).", symbols);
  std::vector<Update> updates{
      {ActionKind::kInsert, ParseGroundAtom("retire(a)", symbols).value()}};
  auto result = Park(db, program, updates);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->database.ToString(),
            "{badge(b), emp(b), offboarded(a), retire(a)}");
}

TEST(EcaSemanticsTest, InsertEventDistinctFromPresence) {
  // onboard fires only for the employee inserted in THIS transaction.
  constexpr char kProgram[] = "+emp(X) -> +welcome(X).";
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(kProgram, symbols);
  Database db = MustParseDatabase("emp(old).", symbols);
  std::vector<Update> updates{
      {ActionKind::kInsert, ParseGroundAtom("emp(new)", symbols).value()}};
  auto result = Park(db, program, updates);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->database.ToString(),
            "{emp(new), emp(old), welcome(new)}");
}

}  // namespace
}  // namespace park
