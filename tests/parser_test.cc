#include "lang/parser.h"

#include <gtest/gtest.h>

#include "lang/printer.h"

namespace park {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() : symbols_(MakeSymbolTable()) {}

  Rule MustRule(std::string_view text) {
    auto rule = ParseRule(text, symbols_);
    EXPECT_TRUE(rule.ok()) << rule.status().ToString();
    return rule.ok() ? std::move(rule).value() : Rule();
  }

  std::shared_ptr<SymbolTable> symbols_;
};

TEST_F(ParserTest, SimplePropositionalRule) {
  Rule rule = MustRule("p -> +q.");
  EXPECT_EQ(rule.body().size(), 1u);
  EXPECT_EQ(rule.body()[0].kind, LiteralKind::kPositive);
  EXPECT_EQ(rule.head().action, ActionKind::kInsert);
  EXPECT_EQ(rule.num_variables(), 0);
  EXPECT_TRUE(rule.name().empty());
}

TEST_F(ParserTest, LabeledRule) {
  Rule rule = MustRule("cleanup: p -> -q.");
  EXPECT_EQ(rule.name(), "cleanup");
  EXPECT_EQ(rule.head().action, ActionKind::kDelete);
}

TEST_F(ParserTest, PriorityAnnotation) {
  EXPECT_EQ(MustRule("r [prio=7]: p -> +q.").priority(), 7);
  EXPECT_EQ(MustRule("r2 [priority=3]: p -> +q.").priority(), 3);
  EXPECT_EQ(MustRule("r3 [prio=-2]: p -> +q.").priority(), -2);
  EXPECT_EQ(MustRule("[prio=9] p -> +q.").priority(), 9);
  EXPECT_EQ(MustRule("p -> +q.").priority(), std::nullopt);
}

TEST_F(ParserTest, SourceAnnotation) {
  EXPECT_EQ(MustRule("r [src=4]: p -> +q.").source(), 4);
  EXPECT_EQ(MustRule("r2 [source=2]: p -> +q.").source(), 2);
  EXPECT_EQ(MustRule("p -> +q.").source(), std::nullopt);
  Rule both = MustRule("r3 [prio=1, src=2]: p -> +q.");
  EXPECT_EQ(both.priority(), 1);
  EXPECT_EQ(both.source(), 2);
  EXPECT_FALSE(ParseRule("r [weight=1]: p -> +q.", symbols_).ok());
}

TEST_F(ParserTest, VariablesShareIndexes) {
  Rule rule = MustRule("p(X), q(X, Y) -> +r(Y, X).");
  EXPECT_EQ(rule.num_variables(), 2);
  EXPECT_EQ(rule.variable_names(), (std::vector<std::string>{"X", "Y"}));
  // Head terms: r(Y, X) — indexes 1 then 0.
  EXPECT_EQ(rule.head().atom.terms[0].var_index(), 1);
  EXPECT_EQ(rule.head().atom.terms[1].var_index(), 0);
}

TEST_F(ParserTest, AnonymousVariablesAreFresh) {
  Rule rule = MustRule("p(_, _), q(X) -> +r(X).");
  // Two `_` plus X = 3 variables.
  EXPECT_EQ(rule.num_variables(), 3);
  EXPECT_NE(rule.body()[0].atom.terms[0].var_index(),
            rule.body()[0].atom.terms[1].var_index());
}

TEST_F(ParserTest, NegationForms) {
  Rule bang = MustRule("p(X), !q(X) -> +r(X).");
  EXPECT_EQ(bang.body()[1].kind, LiteralKind::kNegated);
  Rule word = MustRule("p(X), not q(X) -> +r(X).");
  EXPECT_EQ(word.body()[1].kind, LiteralKind::kNegated);
}

TEST_F(ParserTest, EventLiterals) {
  Rule rule = MustRule("+r(X), -s(X), q(X) -> -t(X).");
  EXPECT_EQ(rule.body()[0].kind, LiteralKind::kEventInsert);
  EXPECT_EQ(rule.body()[1].kind, LiteralKind::kEventDelete);
  EXPECT_EQ(rule.body()[2].kind, LiteralKind::kPositive);
  EXPECT_TRUE(rule.HasEventLiterals());
  EXPECT_FALSE(MustRule("p -> +q.").HasEventLiterals());
}

TEST_F(ParserTest, EmptyBodySeedRule) {
  Rule rule = MustRule("-> +q(b).");
  EXPECT_TRUE(rule.body().empty());
  EXPECT_EQ(rule.head().action, ActionKind::kInsert);
  EXPECT_TRUE(rule.head().atom.IsGround());
}

TEST_F(ParserTest, TermTypes) {
  Rule rule = MustRule("p(alice, 42, -7, \"J. Doe\") -> +q.");
  const auto& terms = rule.body()[0].atom.terms;
  ASSERT_EQ(terms.size(), 4u);
  EXPECT_TRUE(terms[0].constant().is_symbol());
  EXPECT_EQ(terms[1].constant().int_value(), 42);
  EXPECT_EQ(terms[2].constant().int_value(), -7);
  EXPECT_TRUE(terms[3].constant().is_string());
}

TEST_F(ParserTest, ProgramParsingAssignsIndexes) {
  auto program = ParseProgram("a -> +b. r2: b -> +c. c -> -a.", symbols_);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->size(), 3u);
  EXPECT_EQ(program->rule(0).index(), 0);
  EXPECT_EQ(program->rule(2).index(), 2);
  EXPECT_EQ(program->FindRule("r2"), 1);
  EXPECT_EQ(program->FindRule("nope"), std::nullopt);
}

TEST_F(ParserTest, DuplicateLabelRejected) {
  auto program = ParseProgram("r: a -> +b. r: b -> +c.", symbols_);
  EXPECT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(ParserTest, UnsafeHeadVariableRejected) {
  auto rule = ParseRule("p(X) -> +q(X, Y).", symbols_);
  EXPECT_FALSE(rule.ok());
  EXPECT_NE(rule.status().message().find("unsafe"), std::string::npos);
}

TEST_F(ParserTest, UnsafeNegatedVariableRejected) {
  auto rule = ParseRule("p(X), !q(Y) -> +r(X).", symbols_);
  EXPECT_FALSE(rule.ok());
}

TEST_F(ParserTest, EventLiteralBindsVariables) {
  // Event literals count as binding occurrences for safety.
  auto rule = ParseRule("+r(X) -> -s(X).", symbols_);
  EXPECT_TRUE(rule.ok()) << rule.status().ToString();
}

TEST_F(ParserTest, SyntaxErrorsCarryPositions) {
  auto missing_period = ParseRule("p -> +q", symbols_);
  EXPECT_FALSE(missing_period.ok());
  auto bad_head = ParseRule("p -> q.", symbols_);
  EXPECT_FALSE(bad_head.ok());
  EXPECT_NE(bad_head.status().message().find("'+' or '-'"),
            std::string::npos);
  auto no_head = ParseRule("p -> .", symbols_);
  EXPECT_FALSE(no_head.ok());
  auto empty_args = ParseRule("p() -> +q.", symbols_);
  EXPECT_FALSE(empty_args.ok());
}

TEST_F(ParserTest, DatabaseParsing) {
  auto db = ParseDatabase("p(a). q(a, b). r. score(x, 10).", symbols_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->size(), 4u);
  EXPECT_EQ(db->ToString(), "{p(a), q(a, b), r, score(x, 10)}");
}

TEST_F(ParserTest, DatabaseRejectsVariables) {
  auto db = ParseDatabase("p(X).", symbols_);
  EXPECT_FALSE(db.ok());
  EXPECT_NE(db.status().message().find("ground"), std::string::npos);
}

TEST_F(ParserTest, ParseFactsInto) {
  Database db(symbols_);
  ASSERT_TRUE(ParseFactsInto("p(a).", db).ok());
  ASSERT_TRUE(ParseFactsInto("q(b).", db).ok());
  EXPECT_EQ(db.size(), 2u);
}

TEST_F(ParserTest, ParseGroundAtomHelper) {
  auto atom = ParseGroundAtom("payroll(john, 5000)", symbols_);
  ASSERT_TRUE(atom.ok());
  EXPECT_EQ(atom->ToString(*symbols_), "payroll(john, 5000)");
  EXPECT_FALSE(ParseGroundAtom("p(X)", symbols_).ok());
  EXPECT_FALSE(ParseGroundAtom("p(a) extra", symbols_).ok());
}

TEST_F(ParserTest, SamePredicateNameDifferentArity) {
  auto program =
      ParseProgram("p(X) -> +q(X). p(X, Y) -> +q(X, Y).", symbols_);
  ASSERT_TRUE(program.ok());
  EXPECT_NE(program->rule(0).body()[0].atom.predicate,
            program->rule(1).body()[0].atom.predicate);
}

TEST_F(ParserTest, RuleBuilderBasic) {
  auto rule = RuleBuilder(symbols_)
                  .Name("cleanup")
                  .Priority(4)
                  .When("emp", {"X"})
                  .WhenNot("active", {"X"})
                  .When("payroll", {"X", "S"})
                  .Delete("payroll", {"X", "S"})
                  .Build();
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->name(), "cleanup");
  EXPECT_EQ(rule->priority(), 4);
  EXPECT_EQ(rule->body().size(), 3u);
  EXPECT_EQ(rule->num_variables(), 2);
}

TEST_F(ParserTest, RuleBuilderEvents) {
  auto rule = RuleBuilder(symbols_)
                  .OnDeleted("payroll", {"X", "S"})
                  .Insert("audit", {"X"})
                  .Build();
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->body()[0].kind, LiteralKind::kEventDelete);
}

TEST_F(ParserTest, RuleBuilderErrors) {
  // No head.
  EXPECT_FALSE(RuleBuilder(symbols_).When("p", {}).Build().ok());
  // Two heads.
  EXPECT_FALSE(RuleBuilder(symbols_)
                   .When("p", {})
                   .Insert("q", {})
                   .Delete("r", {})
                   .Build()
                   .ok());
  // Unsafe.
  EXPECT_FALSE(
      RuleBuilder(symbols_).When("p", {"X"}).Insert("q", {"Y"}).Build().ok());
}

TEST_F(ParserTest, RuleBuilderMatchesParserOutput) {
  auto built = RuleBuilder(symbols_)
                   .Name("r")
                   .When("p", {"X"})
                   .Insert("q", {"X"})
                   .Build();
  ASSERT_TRUE(built.ok());
  Rule parsed = MustRule("r: p(X) -> +q(X).");
  EXPECT_EQ(RuleToString(*built, *symbols_),
            RuleToString(parsed, *symbols_));
}

}  // namespace
}  // namespace park
