// Serving-layer oracle: concurrency is an implementation detail of the
// Session front-end, never a semantic one. Whatever interleaving the
// group-commit pipeline produces, (a) the journal must hold ONE record
// per batch whose sequential replay reproduces the served state
// bit-identically, and (b) every Snapshot must observe exactly the state
// some journal prefix produces — never a torn commit, never an
// uncommitted batch. Run under TSan in CI (the serving job), where the
// lock-free reader path and the leader/follower queue get their data-race
// certification.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <filesystem>
#include <thread>
#include <vector>

#include "core/policy.h"
#include "eca/journal.h"
#include "serve/session.h"
#include "util/string_util.h"

namespace park {
namespace {

std::string TempDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

/// Spin latch: releases all waiting threads at once so commits actually
/// arrive concurrently and the pipeline has batches to fold.
class StartGate {
 public:
  void Wait() const {
    while (!open_.load(std::memory_order_acquire)) std::this_thread::yield();
  }
  void Open() { open_.store(true, std::memory_order_release); }

 private:
  std::atomic<bool> open_{false};
};

struct SnapshotObservation {
  uint64_t journal_seq = 0;
  std::string state;
};

struct CommitObservation {
  uint64_t journal_seq = 0;
  uint64_t batch_seq = 0;
  uint32_t batch_size = 0;
  uint32_t batch_position = 0;
};

TEST(ServingOracleTest, ConcurrentCommitsMatchSequentialJournalReplay) {
  const std::string dir = TempDir("park_serving_oracle");
  const char* kRules = "+emp(X) -> +active(X).\n"
                       "-emp(X), payroll(X, S) -> -payroll(X, S).\n";
  constexpr int kWriters = 4;
  constexpr int kCommitsPerWriter = 12;
  constexpr int kReaders = 2;

  Session::Params params;
  params.rules = kRules;
  params.sync_mode = JournalSyncMode::kNone;  // speed; durability is
                                              // bench_serve's concern
  auto session_or = Session::Open(dir, std::move(params));
  ASSERT_TRUE(session_or.ok()) << session_or.status().ToString();
  std::unique_ptr<Session> session = std::move(session_or).value();

  StartGate gate;
  std::atomic<bool> writers_done{false};
  std::vector<std::vector<CommitObservation>> commits(kWriters);
  std::vector<std::vector<SnapshotObservation>> reads(kReaders);
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      gate.Wait();
      for (int i = 0; i < kCommitsPerWriter; ++i) {
        Transaction tx = session->Begin();
        tx.Insert("emp", {StrFormat("w%d_%d", w, i)});
        if (i % 3 == 2) {
          tx.Insert("payroll", {StrFormat("w%d_%d", w, i), "1000"});
        }
        auto report = std::move(tx).Commit();
        if (!report.ok()) {
          ++failures;
          continue;
        }
        commits[w].push_back({report->journal_seq, report->batch_seq,
                              report->batch_size, report->batch_position});
      }
    });
  }
  // Readers snapshot continuously while the writers run; each
  // observation is (journal_seq, full rendered state).
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      gate.Wait();
      while (!writers_done.load(std::memory_order_acquire)) {
        park::Snapshot snap = session->Snapshot();
        reads[r].push_back({snap.journal_seq(), snap.ToString()});
        std::this_thread::yield();
      }
    });
  }
  gate.Open();
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  writers_done.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  ASSERT_EQ(failures.load(), 0);

  // --- Oracle: sequential replay of the journal, one record at a time,
  // recording the state after every prefix. ---
  auto records = TransactionJournal::ReadRecords(dir + "/journal.log",
                                                 session->symbols());
  ASSERT_TRUE(records.ok()) << records.status().ToString();

  ActiveDatabase oracle(session->symbols());
  ASSERT_TRUE(oracle.LoadRules(kRules).ok());
  std::map<uint64_t, std::string> state_at;  // journal_seq -> state
  state_at[0] = oracle.database().ToString();
  uint64_t total_txns = 0;
  uint64_t prev_seq = 0;
  for (const JournalRecord& record : *records) {
    EXPECT_GT(record.seq, prev_seq) << "journal sequence must ascend";
    prev_seq = record.seq;
    total_txns += record.txns;
    Transaction tx = oracle.Begin();
    for (const Update& update : record.updates.updates()) {
      if (update.action == ActionKind::kInsert) {
        tx.Insert(update.atom);
      } else {
        tx.Delete(update.atom);
      }
    }
    auto replayed = std::move(tx).Commit();
    ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
    state_at[record.seq] = oracle.database().ToString();
  }

  // One folded record per batch: the journal's txns sum to every commit.
  EXPECT_EQ(total_txns,
            static_cast<uint64_t>(kWriters) * kCommitsPerWriter);

  // The served final state is the replayed final state, bit-identically.
  EXPECT_EQ(session->Snapshot().ToString(),
            oracle.database().ToString());

  // Every snapshot observed exactly a committed prefix state.
  size_t observations = 0;
  for (const auto& reader : reads) {
    for (const SnapshotObservation& obs : reader) {
      auto it = state_at.find(obs.journal_seq);
      ASSERT_NE(it, state_at.end())
          << "snapshot at seq " << obs.journal_seq
          << " does not match any commit boundary";
      EXPECT_EQ(obs.state, it->second)
          << "snapshot diverges from the sequential replay at seq "
          << obs.journal_seq;
      ++observations;
    }
  }
  EXPECT_GT(observations, 0u);

  // Batch-report invariants: members of one (non-retried) batch agree on
  // the journal record and batch size, and occupy distinct positions.
  std::map<uint64_t, std::vector<CommitObservation>> by_batch;
  for (const auto& writer : commits) {
    for (const CommitObservation& obs : writer) {
      ASSERT_GT(obs.journal_seq, 0u);
      ASSERT_GE(obs.batch_size, 1u);
      EXPECT_LT(obs.batch_position, obs.batch_size);
      if (obs.batch_size > 1) by_batch[obs.batch_seq].push_back(obs);
    }
  }
  for (const auto& [batch_seq, members] : by_batch) {
    std::set<uint32_t> positions;
    for (const CommitObservation& obs : members) {
      EXPECT_EQ(obs.journal_seq, members.front().journal_seq);
      EXPECT_EQ(obs.batch_size, members.front().batch_size);
      positions.insert(obs.batch_position);
    }
    EXPECT_EQ(positions.size(), members.size())
        << "batch " << batch_seq << " repeated a position";
  }

  // Batch journal records replay through Open as well: a reopened
  // session serves the identical state.
  session.reset();
  Session::Params reopen;
  reopen.rules = kRules;
  auto reopened = Session::Open(dir, std::move(reopen));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->Snapshot().ToString(),
            oracle.database().ToString());
}

TEST(ServingOracleTest, SnapshotsPinTheirGenerationAcrossLaterCommits) {
  auto session_or = Session::Create({});
  ASSERT_TRUE(session_or.ok()) << session_or.status().ToString();
  std::unique_ptr<Session> session = std::move(session_or).value();

  ASSERT_TRUE(std::move(session->Begin().Insert("p", {"a"})).Commit().ok());
  park::Snapshot before = session->Snapshot();
  ASSERT_TRUE(std::move(session->Begin().Insert("p", {"b"})).Commit().ok());
  park::Snapshot after = session->Snapshot();

  // The old handle still reads its pinned generation...
  EXPECT_EQ(before.ToString(), "{p(a)}");
  EXPECT_EQ(after.ToString(), "{p(a), p(b)}");
  EXPECT_LT(before.generation(), after.generation());
  auto hits = before.Query("p(X)");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->bindings.size(), 1u);
  EXPECT_TRUE(after.Matches("p(b)").value());
  EXPECT_FALSE(before.Matches("p(b)").value());

  // ...and the accounting sees two live pins on distinct generations.
  ParkStats::ServingCounters counters = session->serving_stats();
  EXPECT_EQ(counters.snapshots_opened, 2u);
  EXPECT_EQ(counters.snapshots_pinned, 2u);
  EXPECT_EQ(counters.segment_generations_retained, 2u);

  // Dropping one handle releases exactly its pin (copies share a pin).
  park::Snapshot copy = before;
  before = park::Snapshot();
  EXPECT_EQ(session->serving_stats().snapshots_pinned, 2u);
  copy = park::Snapshot();
  counters = session->serving_stats();
  EXPECT_EQ(counters.snapshots_pinned, 1u);
  EXPECT_EQ(counters.segment_generations_retained, 1u);

  // A snapshot outlives its session: destruction of everything the
  // session owned must not disturb the pinned segments.
  session.reset();
  EXPECT_EQ(after.ToString(), "{p(a), p(b)}");
}

TEST(ServingOracleTest, PoisonedBatchFallsBackToIndividualCommits) {
  // The conflict only exists WITHIN a batch: +x(I) and +y(I) are staged
  // by different transactions, so only a fold that unites the two events
  // fires the +a/-a pair. The abstaining policy turns that conflict into
  // a failed folded firing; the pipeline must then commit the members
  // individually (where neither rule fires) without failing anyone.
  Session::Params params;
  params.rules = "+x(I), +y(I) -> +a(I).\n"
                 "+x(I), +y(I) -> -a(I).\n";
  params.options.policy = MakeLambdaPolicy(
      "abstain", [](const PolicyContext&, const Conflict&) -> Result<Vote> {
        return Vote::kAbstain;
      });
  auto session_or = Session::Create(std::move(params));
  ASSERT_TRUE(session_or.ok()) << session_or.status().ToString();
  std::unique_ptr<Session> session = std::move(session_or).value();

  constexpr int kRounds = 25;
  constexpr int kPairs = 3;
  for (int round = 0; round < kRounds; ++round) {
    StartGate gate;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int p = 0; p < kPairs; ++p) {
      for (const char* pred : {"x", "y"}) {
        threads.emplace_back([&, p, pred] {
          gate.Wait();
          Transaction tx = session->Begin();
          tx.Insert(pred, {StrFormat("i%d_%d", round, p)});
          if (!std::move(tx).Commit().ok()) ++failures;
        });
      }
    }
    gate.Open();
    for (std::thread& t : threads) t.join();
    ASSERT_EQ(failures.load(), 0) << "round " << round;
    // Stop as soon as the scheduler actually co-batched a pair.
    if (session->serving_stats().poisoned_batches > 0) break;
  }

  ParkStats::ServingCounters counters = session->serving_stats();
  if (counters.poisoned_batches > 0) {
    // A poisoned batch of k retries k members.
    EXPECT_GE(counters.individual_retries, 2 * counters.poisoned_batches);
  }
  // Whatever got batched, no a(...) may survive and every insert landed.
  park::Snapshot snap = session->Snapshot();
  EXPECT_FALSE(snap.Matches("a(_)").value());
  auto xs = snap.Query("x(I)");
  auto ys = snap.Query("y(I)");
  ASSERT_TRUE(xs.ok());
  ASSERT_TRUE(ys.ok());
  EXPECT_EQ(xs->bindings.size(), ys->bindings.size());
  EXPECT_GT(xs->bindings.size(), 0u);
}

TEST(ServingOracleTest, ReportsAndStatsDescribeTheBatching) {
  auto session_or = Session::Create({});
  ASSERT_TRUE(session_or.ok());
  std::unique_ptr<Session> session = std::move(session_or).value();

  auto report = std::move(session->Begin().Insert("p", {"a"})).Commit();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->batch_seq, 0u);
  EXPECT_EQ(report->batch_size, 1u);
  EXPECT_EQ(report->batch_position, 0u);
  // Each report carries the serving block it was committed under.
  EXPECT_GE(report->stats.serving.batches, 1u);

  ParkStats::ServingCounters counters = session->serving_stats();
  EXPECT_EQ(counters.batches, 1u);
  EXPECT_EQ(counters.batched_txns, 1u);
  EXPECT_EQ(counters.max_batch_size, 1u);
  uint64_t hist_sum = 0;
  for (uint64_t bucket : counters.batch_size_hist) hist_sum += bucket;
  EXPECT_EQ(hist_sum, counters.batches);

  // max_group_size = 1 disables folding entirely.
  Session::Params solo;
  solo.max_group_size = 1;
  auto unbatched = Session::Create(std::move(solo));
  ASSERT_TRUE(unbatched.ok());
  EXPECT_EQ((*unbatched)->max_group_size(), 1u);
}

TEST(ServingOracleTest, SessionQueryAndStabilizeServeCommittedState) {
  Session::Params params;
  params.rules = "p(X) -> +q(X).";
  auto session_or = Session::Create(std::move(params));
  ASSERT_TRUE(session_or.ok());
  std::unique_ptr<Session> session = std::move(session_or).value();

  ASSERT_TRUE(session->LoadFacts("p(a). p(b).").ok());
  // LoadFacts republishes without firing rules...
  EXPECT_FALSE(session->Snapshot().Matches("q(_)").value());
  // ...Stabilize fires them and republishes again.
  auto stabilized = session->Stabilize();
  ASSERT_TRUE(stabilized.ok()) << stabilized.status().ToString();
  auto hits = session->Query("q(X)");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->bindings.size(), 2u);
}

}  // namespace
}  // namespace park
