// The cost-based join planner: literal ordering driven by storage
// statistics, probe-column selection, plan caching with drift-triggered
// replanning, and the invariant that a PlanCache's index requirements
// never diverge from CollectIndexRequirements (the prewarm contract).
// The executor itself is pinned by matcher_test; the oracle sweep across
// planner modes lives in planner_oracle_test.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "engine/matcher.h"
#include "lang/parser.h"

namespace park {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() : symbols_(MakeSymbolTable()) {}

  Rule MustRule(std::string_view text) {
    auto rule = ParseRule(text, symbols_);
    EXPECT_TRUE(rule.ok()) << rule.status().ToString();
    return rule.ok() ? std::move(rule).value() : Rule();
  }

  Program MustProgram(std::string_view text) {
    auto program = ParseProgram(text, symbols_);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    return std::move(program).value();
  }

  Database MustDb(std::string_view facts) {
    return ParseDatabase(facts, symbols_).value();
  }

  /// Bindings produced by executing `plan`, rendered "X=a,Y=b" and sorted.
  std::vector<std::string> PlanMatches(const CompiledPlan& plan,
                                       const Rule& rule,
                                       const IInterpretation& interp) {
    std::vector<std::string> out;
    ExecutePlan(plan, rule, interp, CandidateSlice{},
                [&](const Tuple& binding) {
                  std::string s;
                  for (int i = 0; i < binding.arity(); ++i) {
                    if (i > 0) s += ",";
                    s += rule.variable_names()[static_cast<size_t>(i)] +
                         "=" + binding[i].ToString(*symbols_);
                  }
                  out.push_back(s);
                });
    std::sort(out.begin(), out.end());
    return out;
  }

  /// The step literal order of a plan, as body indexes.
  static std::vector<int> Order(const CompiledPlan& plan) {
    std::vector<int> order;
    for (const CompiledStep& step : plan.steps) {
      order.push_back(step.literal_index);
    }
    return order;
  }

  std::shared_ptr<SymbolTable> symbols_;
};

/// A database where `big` dwarfs `sel`: big(i, i%4) for i in [0, 120),
/// sel(0) only.
std::string SkewedFacts() {
  std::string facts = "sel(c0).";
  for (int i = 0; i < 120; ++i) {
    facts += " big(x" + std::to_string(i) + ", c" + std::to_string(i % 4) +
             ").";
  }
  return facts;
}

TEST_F(PlannerTest, CostOrderStartsFromTheSmallStream) {
  Database db = MustDb(SkewedFacts());
  IInterpretation interp(&db);
  Rule rule = MustRule("big(X, Y), sel(Y) -> +out(X).");

  // Heuristic: no literal has bound positions up front, so source order
  // wins and the 120-row scan of `big` generates first.
  CompiledPlan heuristic =
      CompilePlan(rule, -1, PlannerMode::kHeuristic, &interp);
  EXPECT_EQ(Order(heuristic), (std::vector<int>{0, 1}));

  // Cost-based: sel's one row is the cheaper stream; big is then probed
  // on its bound second column instead of scanned.
  CompiledPlan cost = CompilePlan(rule, -1, PlannerMode::kCostBased, &interp);
  EXPECT_EQ(Order(cost), (std::vector<int>{1, 0}));
  ASSERT_EQ(cost.steps.size(), 2u);
  EXPECT_EQ(cost.steps[0].probe_column, -1);  // sel: full scan of 1 row
  EXPECT_EQ(cost.steps[1].probe_column, 1);   // big probed on Y
  EXPECT_LE(cost.steps[0].estimated_rows, 2.0);

  // Same match set either way (different enumeration order only).
  EXPECT_EQ(PlanMatches(cost, rule, interp),
            PlanMatches(heuristic, rule, interp));
  EXPECT_EQ(PlanMatches(cost, rule, interp),
            (std::vector<std::string>{
                "X=x0,Y=c0", "X=x100,Y=c0", "X=x104,Y=c0", "X=x108,Y=c0",
                "X=x112,Y=c0", "X=x116,Y=c0", "X=x12,Y=c0", "X=x16,Y=c0",
                "X=x20,Y=c0", "X=x24,Y=c0", "X=x28,Y=c0", "X=x32,Y=c0",
                "X=x36,Y=c0", "X=x4,Y=c0", "X=x40,Y=c0", "X=x44,Y=c0",
                "X=x48,Y=c0", "X=x52,Y=c0", "X=x56,Y=c0", "X=x60,Y=c0",
                "X=x64,Y=c0", "X=x68,Y=c0", "X=x72,Y=c0", "X=x76,Y=c0",
                "X=x8,Y=c0", "X=x80,Y=c0", "X=x84,Y=c0", "X=x88,Y=c0",
                "X=x92,Y=c0", "X=x96,Y=c0"}));
}

TEST_F(PlannerTest, GroundFiltersRunFirstUnderBothModes) {
  Database db = MustDb("flag. p(a). p(b).");
  IInterpretation interp(&db);
  Rule rule = MustRule("p(X), flag -> +q(X).");
  for (PlannerMode mode :
       {PlannerMode::kHeuristic, PlannerMode::kCostBased}) {
    CompiledPlan plan = CompilePlan(rule, -1, mode, &interp);
    ASSERT_EQ(plan.steps.size(), 2u);
    EXPECT_EQ(plan.steps[0].literal_index, 1);  // the ground filter
    EXPECT_TRUE(plan.steps[0].filter);
    EXPECT_FALSE(plan.steps[1].filter);
  }
}

TEST_F(PlannerTest, CostProbePicksTheMoreSelectiveColumn) {
  // fact(D, K, Z): column 0 has 2 distinct values, column 1 is a key.
  // After src binds D and K, the cost-based probe must use column 1
  // (~1 row per probe) while the heuristic uses the first bound
  // position, column 0 (~30 rows per probe).
  std::string facts = "src(d0, k8).";
  for (int i = 0; i < 60; ++i) {
    facts += " fact(d" + std::to_string(i % 2) + ", k" + std::to_string(i) +
             ", z" + std::to_string(i) + ").";
  }
  Database db = MustDb(facts);
  IInterpretation interp(&db);
  Rule rule = MustRule("src(D, K), fact(D, K, Z) -> +out(Z).");

  CompiledPlan cost = CompilePlan(rule, -1, PlannerMode::kCostBased, &interp);
  ASSERT_EQ(Order(cost), (std::vector<int>{0, 1}));
  EXPECT_EQ(cost.steps[1].probe_column, 1);

  CompiledPlan heuristic =
      CompilePlan(rule, -1, PlannerMode::kHeuristic, &interp);
  ASSERT_EQ(Order(heuristic), (std::vector<int>{0, 1}));
  EXPECT_EQ(heuristic.steps[1].probe_column, 0);

  EXPECT_EQ(PlanMatches(cost, rule, interp),
            (std::vector<std::string>{"D=d0,K=k8,Z=z8"}));
  EXPECT_EQ(PlanMatches(cost, rule, interp),
            PlanMatches(heuristic, rule, interp));
}

TEST_F(PlannerTest, PlanIsAPureFunctionOfTheStatistics) {
  Database db = MustDb(SkewedFacts());
  IInterpretation interp(&db);
  Rule rule = MustRule("big(X, Y), sel(Y) -> +out(X).");
  CompiledPlan a = CompilePlan(rule, -1, PlannerMode::kCostBased, &interp);
  CompiledPlan b = CompilePlan(rule, -1, PlannerMode::kCostBased, &interp);
  EXPECT_EQ(Order(a), Order(b));
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].probe_column, b.steps[i].probe_column);
    EXPECT_EQ(a.steps[i].estimated_rows, b.steps[i].estimated_rows);
  }
}

TEST_F(PlannerTest, CacheHitsThenDriftTriggersReplan) {
  Program program = MustProgram("r: big(X, Y), sel(Y) -> +out(X).");
  Database db = MustDb(SkewedFacts());
  IInterpretation interp(&db);
  const Rule& rule = program.rules()[0];

  PlanCache cache(program, PlannerMode::kCostBased);
  const CompiledPlan& first = cache.Get(rule, -1, interp);
  EXPECT_EQ(Order(first), (std::vector<int>{1, 0}));
  EXPECT_EQ(cache.plans_compiled(), 1u);
  EXPECT_EQ(cache.cache_hits(), 0u);

  cache.Get(rule, -1, interp);
  EXPECT_EQ(cache.plans_compiled(), 1u);
  EXPECT_EQ(cache.cache_hits(), 1u);
  EXPECT_EQ(cache.replans(), 0u);

  // Grow `sel` from 1 row to 500: far past the 2x+8 drift envelope, and
  // enough to flip the cheapest stream back to `big` (120 rows).
  for (int i = 0; i < 500; ++i) {
    db.InsertAtom("sel", {"s" + std::to_string(i)});
  }
  const CompiledPlan& replanned = cache.Get(rule, -1, interp);
  EXPECT_EQ(cache.plans_compiled(), 2u);
  EXPECT_EQ(cache.replans(), 1u);
  EXPECT_EQ(Order(replanned), (std::vector<int>{0, 1}));

  // Stable statistics: back to cache hits.
  cache.Get(rule, -1, interp);
  EXPECT_EQ(cache.plans_compiled(), 2u);
  EXPECT_EQ(cache.replans(), 1u);
}

TEST_F(PlannerTest, HeuristicCacheNeverReplans) {
  Program program = MustProgram("r: big(X, Y), sel(Y) -> +out(X).");
  Database db = MustDb(SkewedFacts());
  IInterpretation interp(&db);
  const Rule& rule = program.rules()[0];

  PlanCache cache(program, PlannerMode::kHeuristic);
  cache.Get(rule, -1, interp);
  for (int i = 0; i < 500; ++i) {
    db.InsertAtom("sel", {"s" + std::to_string(i)});
  }
  cache.Get(rule, -1, interp);
  EXPECT_EQ(cache.plans_compiled(), 1u);
  EXPECT_EQ(cache.cache_hits(), 1u);
  EXPECT_EQ(cache.replans(), 0u);
}

TEST_F(PlannerTest, CompileListenerSeesEveryCompile) {
  Program program = MustProgram("r: big(X, Y), sel(Y) -> +out(X).");
  Database db = MustDb(SkewedFacts());
  IInterpretation interp(&db);
  const Rule& rule = program.rules()[0];

  PlanCache cache(program, PlannerMode::kCostBased);
  std::vector<std::string> lines;
  cache.set_compile_listener([&](const PlanExplanation& explanation) {
    lines.push_back(ExplainPlanLine(explanation));
  });
  cache.Get(rule, -1, interp);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("mode=cost-based"), std::string::npos);
  EXPECT_NE(lines[0].find("lit1"), std::string::npos);
  EXPECT_EQ(lines[0].find("replan"), std::string::npos);

  for (int i = 0; i < 500; ++i) {
    db.InsertAtom("sel", {"s" + std::to_string(i)});
  }
  cache.Get(rule, -1, interp);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("(replan)"), std::string::npos);
}

// --- index requirements (the prewarm contract) -----------------------------

std::string RenderRequirements(const IndexRequirements& reqs) {
  auto render = [](const IndexRequirements::ColumnsByPredicate& columns,
                   const char* tag) {
    std::vector<std::string> entries;
    for (const auto& [pred, cols] : columns) {
      std::vector<int> sorted_cols = cols;
      std::sort(sorted_cols.begin(), sorted_cols.end());
      std::string entry = std::string(tag) + std::to_string(pred) + ":";
      for (int c : sorted_cols) entry += std::to_string(c) + ",";
      entries.push_back(entry);
    }
    std::sort(entries.begin(), entries.end());
    std::string out;
    for (const std::string& e : entries) out += e + ";";
    return out;
  };
  return render(reqs.base, "base/") + render(reqs.plus, "plus/") +
         render(reqs.minus, "minus/");
}

TEST_F(PlannerTest, CacheRequirementsMatchCollectIndexRequirements) {
  // CollectIndexRequirements promises exactly the probes the compiled
  // heuristic plans use. Drive a heuristic PlanCache through every
  // (rule, seed) slot and assert the two derivations are identical —
  // they share AddPlanRequirements, so divergence would mean the plan
  // sets differ.
  Program program = MustProgram(R"(
    t: edge(X, Y), edge(Y, Z), !blocked(Z) -> +path(X, Z).
    fire: +alarm(L), sensor(L, S) -> +notify(S).
    clear: -alarm(L), notify(S), sensor(L, S) -> -notify(S).
  )");
  Database db = MustDb("edge(a, b). sensor(l1, s1). notify(s1).");
  IInterpretation interp(&db);

  PlanCache cache(program, PlannerMode::kHeuristic);
  for (const Rule& rule : program.rules()) {
    cache.Get(rule, -1, interp);
    for (size_t s = 0; s < rule.body().size(); ++s) {
      cache.Get(rule, static_cast<int>(s), interp);
    }
  }
  EXPECT_EQ(RenderRequirements(cache.requirements()),
            RenderRequirements(CollectIndexRequirements(program)));
}

}  // namespace
}  // namespace park
