#include "core/policy.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/park_evaluator.h"
#include "lang/parser.h"

namespace park {
namespace {

/// Fixture that manufactures a real conflict (via Γ) so policies see the
/// same shapes the evaluator hands them.
class PolicyTest : public ::testing::Test {
 protected:
  PolicyTest()
      : symbols_(MakeSymbolTable()),
        program_(Program(symbols_)),
        db_(Database(symbols_)) {}

  /// Installs program/db and computes the single conflict.
  void Setup(std::string_view program_text, std::string_view facts) {
    program_ = ParseProgram(program_text, symbols_).value();
    db_ = ParseDatabase(facts, symbols_).value();
    interp_.emplace(&db_);
    GammaResult gamma = ComputeGamma(program_, {}, *interp_);
    conflicts_ = BuildConflicts(gamma, *interp_);
    ASSERT_FALSE(conflicts_.empty());
  }

  PolicyContext Context() {
    return PolicyContext{db_, program_, *interp_, 0};
  }

  Vote MustSelect(const PolicyPtr& policy, const Conflict& conflict) {
    auto vote = policy->Select(Context(), conflict);
    EXPECT_TRUE(vote.ok()) << vote.status().ToString();
    return vote.ok() ? *vote : Vote::kAbstain;
  }

  std::shared_ptr<SymbolTable> symbols_;
  Program program_;
  Database db_;
  std::optional<IInterpretation> interp_;
  std::vector<Conflict> conflicts_;
};

TEST_F(PolicyTest, InertiaKeepsPresentAtom) {
  Setup("p -> +x. p -> -x.", "p. x.");
  EXPECT_EQ(MustSelect(MakeInertiaPolicy(), conflicts_[0]), Vote::kInsert);
}

TEST_F(PolicyTest, InertiaDropsAbsentAtom) {
  Setup("p -> +x. p -> -x.", "p.");
  EXPECT_EQ(MustSelect(MakeInertiaPolicy(), conflicts_[0]), Vote::kDelete);
}

TEST_F(PolicyTest, RulePriorityDefaultsToProgramPosition) {
  // Deleter is later in the program (higher default priority) -> delete.
  Setup("p -> +x. p -> -x.", "p.");
  EXPECT_EQ(MustSelect(MakeRulePriorityPolicy(), conflicts_[0]),
            Vote::kDelete);
}

TEST_F(PolicyTest, RulePriorityRespectsAnnotations) {
  Setup("[prio=10] p -> +x. [prio=1] p -> -x.", "p.");
  EXPECT_EQ(MustSelect(MakeRulePriorityPolicy(), conflicts_[0]),
            Vote::kInsert);
}

TEST_F(PolicyTest, RulePriorityTieAbstains) {
  Setup("[prio=5] p -> +x. [prio=5] p -> -x.", "p.");
  EXPECT_EQ(MustSelect(MakeRulePriorityPolicy(), conflicts_[0]),
            Vote::kAbstain);
}

TEST_F(PolicyTest, RulePriorityUsesMaxOfEachSide) {
  // Inserters at prio {1, 9}, deleter at prio {5}: max 9 > 5 -> insert.
  Setup("[prio=1] p -> +x. [prio=9] q -> +x. [prio=5] p -> -x.", "p. q.");
  EXPECT_EQ(MustSelect(MakeRulePriorityPolicy(), conflicts_[0]),
            Vote::kInsert);
}

TEST_F(PolicyTest, SpecificityPrefersLongerBody) {
  // The penguin principle: the rule with more conditions wins.
  Setup("bird(X) -> +flies(X). bird(X), penguin(X) -> -flies(X).",
        "bird(tweety). penguin(tweety).");
  EXPECT_EQ(MustSelect(MakeSpecificityPolicy(), conflicts_[0]),
            Vote::kDelete);
}

TEST_F(PolicyTest, SpecificityCountsConstantsOnTie) {
  Setup("p(X), q(X) -> +x. p(a), q(X) -> -x.", "p(a). q(a).");
  EXPECT_EQ(MustSelect(MakeSpecificityPolicy(), conflicts_[0]),
            Vote::kDelete);
}

TEST_F(PolicyTest, SpecificityAbstainsOnTie) {
  Setup("p -> +x. q -> -x.", "p. q.");
  EXPECT_EQ(MustSelect(MakeSpecificityPolicy(), conflicts_[0]),
            Vote::kAbstain);
}

TEST_F(PolicyTest, ConstantPolicies) {
  Setup("p -> +x. p -> -x.", "p.");
  EXPECT_EQ(MustSelect(MakeAlwaysInsertPolicy(), conflicts_[0]),
            Vote::kInsert);
  EXPECT_EQ(MustSelect(MakeAlwaysDeletePolicy(), conflicts_[0]),
            Vote::kDelete);
}

TEST_F(PolicyTest, RandomIsDeterministicGivenSeed) {
  Setup("p -> +x. p -> -x.", "p.");
  PolicyPtr a = MakeRandomPolicy(1234);
  PolicyPtr b = MakeRandomPolicy(1234);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(MustSelect(a, conflicts_[0]), MustSelect(b, conflicts_[0]));
  }
}

TEST_F(PolicyTest, RandomEventuallyVotesBothWays) {
  Setup("p -> +x. p -> -x.", "p.");
  PolicyPtr policy = MakeRandomPolicy(7);
  bool saw_insert = false;
  bool saw_delete = false;
  for (int i = 0; i < 100; ++i) {
    Vote v = MustSelect(policy, conflicts_[0]);
    saw_insert = saw_insert || v == Vote::kInsert;
    saw_delete = saw_delete || v == Vote::kDelete;
  }
  EXPECT_TRUE(saw_insert);
  EXPECT_TRUE(saw_delete);
}

TEST_F(PolicyTest, CompositeTakesFirstNonAbstain) {
  Setup("p -> +x. q -> -x.", "p. q. x.");
  // Specificity abstains (tie); inertia sees x in D -> insert.
  PolicyPtr policy = MakeCompositePolicy(
      {MakeSpecificityPolicy(), MakeInertiaPolicy()});
  EXPECT_EQ(MustSelect(policy, conflicts_[0]), Vote::kInsert);
  EXPECT_EQ(policy->name(), "composite(specificity,inertia)");
}

TEST_F(PolicyTest, CompositeAllAbstainAbstains) {
  Setup("p -> +x. q -> -x.", "p. q.");
  PolicyPtr abstainer = MakeLambdaPolicy(
      "abstainer",
      [](const PolicyContext&, const Conflict&) -> Result<Vote> {
        return Vote::kAbstain;
      });
  PolicyPtr policy = MakeCompositePolicy({abstainer, abstainer});
  EXPECT_EQ(MustSelect(policy, conflicts_[0]), Vote::kAbstain);
}

TEST_F(PolicyTest, VotingMajorityWins) {
  Setup("p -> +x. p -> -x.", "p.");
  PolicyPtr policy = MakeVotingPolicy({MakeAlwaysInsertPolicy(),
                                       MakeAlwaysInsertPolicy(),
                                       MakeAlwaysDeletePolicy()});
  EXPECT_EQ(MustSelect(policy, conflicts_[0]), Vote::kInsert);
}

TEST_F(PolicyTest, VotingTieAbstains) {
  Setup("p -> +x. p -> -x.", "p.");
  PolicyPtr policy = MakeVotingPolicy(
      {MakeAlwaysInsertPolicy(), MakeAlwaysDeletePolicy()});
  EXPECT_EQ(MustSelect(policy, conflicts_[0]), Vote::kAbstain);
}

TEST_F(PolicyTest, VotingAbstentionsDoNotCount) {
  Setup("p -> +x. p -> -x.", "p.");
  PolicyPtr abstainer = MakeLambdaPolicy(
      "abstainer",
      [](const PolicyContext&, const Conflict&) -> Result<Vote> {
        return Vote::kAbstain;
      });
  PolicyPtr policy = MakeVotingPolicy(
      {abstainer, abstainer, MakeAlwaysDeletePolicy()});
  EXPECT_EQ(MustSelect(policy, conflicts_[0]), Vote::kDelete);
}

TEST_F(PolicyTest, VotingPropagatesCriticErrors) {
  Setup("p -> +x. p -> -x.", "p.");
  PolicyPtr failing = MakeLambdaPolicy(
      "failing",
      [](const PolicyContext&, const Conflict&) -> Result<Vote> {
        return AbortedError("critic unavailable");
      });
  PolicyPtr policy = MakeVotingPolicy({failing, MakeAlwaysInsertPolicy()});
  auto vote = policy->Select(Context(), conflicts_[0]);
  EXPECT_FALSE(vote.ok());
  EXPECT_EQ(vote.status().code(), StatusCode::kAborted);
}

TEST_F(PolicyTest, InteractiveStreamPolicy) {
  Setup("p -> +x. p -> -x.", "p.");
  std::istringstream in("bogus\ni\n");
  std::ostringstream out;
  PolicyPtr policy = MakeStreamInteractivePolicy(in, out);
  EXPECT_EQ(MustSelect(policy, conflicts_[0]), Vote::kInsert);
  // The prompt rendered the conflict and re-asked after the bogus answer.
  EXPECT_NE(out.str().find("conflict on x"), std::string::npos);
  EXPECT_NE(out.str().find("unrecognized"), std::string::npos);
}

TEST_F(PolicyTest, InteractiveStreamPolicyEofFails) {
  Setup("p -> +x. p -> -x.", "p.");
  std::istringstream in("");
  std::ostringstream out;
  PolicyPtr policy = MakeStreamInteractivePolicy(in, out);
  auto vote = policy->Select(Context(), conflicts_[0]);
  EXPECT_FALSE(vote.ok());
  EXPECT_EQ(vote.status().code(), StatusCode::kAborted);
}

TEST_F(PolicyTest, DescribeConflictMentionsEverything) {
  Setup("r1: p -> +x. r2: p -> -x.", "p. x.");
  std::string text = DescribeConflict(Context(), conflicts_[0]);
  EXPECT_NE(text.find("conflict on x"), std::string::npos);
  EXPECT_NE(text.find("present in"), std::string::npos);
  EXPECT_NE(text.find("(r1)"), std::string::npos);
  EXPECT_NE(text.find("(r2)"), std::string::npos);
}

TEST_F(PolicyTest, VoteToStringNames) {
  EXPECT_STREQ(VoteToString(Vote::kInsert), "insert");
  EXPECT_STREQ(VoteToString(Vote::kDelete), "delete");
  EXPECT_STREQ(VoteToString(Vote::kAbstain), "abstain");
}

TEST_F(PolicyTest, SourceReliabilityPrefersTrustedSource) {
  Setup("[src=1] p -> +x. [src=2] p -> -x.", "p.");
  // Source 2 is the trusted sensor network; source 1 is a heuristic.
  PolicyPtr policy = MakeSourceReliabilityPolicy({{1, 10}, {2, 90}});
  EXPECT_EQ(MustSelect(policy, conflicts_[0]), Vote::kDelete);
  PolicyPtr reversed = MakeSourceReliabilityPolicy({{1, 90}, {2, 10}});
  EXPECT_EQ(MustSelect(reversed, conflicts_[0]), Vote::kInsert);
}

TEST_F(PolicyTest, SourceReliabilityDefaultsAndTies) {
  Setup("[src=1] p -> +x. p -> -x.", "p.");
  // Unannotated deleter scores default (0) vs source 1 at 50.
  PolicyPtr policy = MakeSourceReliabilityPolicy({{1, 50}});
  EXPECT_EQ(MustSelect(policy, conflicts_[0]), Vote::kInsert);
  // Unknown source falls back to the default too: tie -> abstain.
  PolicyPtr unknown = MakeSourceReliabilityPolicy({{9, 50}});
  EXPECT_EQ(MustSelect(unknown, conflicts_[0]), Vote::kAbstain);
  // A negative default makes annotated rules win even unmapped.
  PolicyPtr negative = MakeSourceReliabilityPolicy({{1, 5}}, -10);
  EXPECT_EQ(MustSelect(negative, conflicts_[0]), Vote::kInsert);
}

TEST_F(PolicyTest, SourceReliabilityAsVotingCritic) {
  // The paper casts source reliability as one critic among several.
  Setup("[src=1] p -> +x. [src=2] p -> -x.", "p. x.");
  PolicyPtr policy = MakeVotingPolicy({
      MakeSourceReliabilityPolicy({{1, 1}, {2, 2}}),  // votes delete
      MakeInertiaPolicy(),                            // x ∈ D: insert
      MakeAlwaysInsertPolicy(),                       // insert
  });
  EXPECT_EQ(MustSelect(policy, conflicts_[0]), Vote::kInsert);
}

TEST_F(PolicyTest, PredicateBiasUsesTable) {
  Setup("p -> +x. p -> -x.", "p.");
  PolicyPtr policy = MakePredicateBiasPolicy(
      {{"x", Vote::kInsert}, {"other", Vote::kDelete}});
  EXPECT_EQ(MustSelect(policy, conflicts_[0]), Vote::kInsert);
}

TEST_F(PolicyTest, PredicateBiasAbstainsOffTable) {
  Setup("p -> +x. p -> -x.", "p.");
  PolicyPtr policy =
      MakePredicateBiasPolicy({{"unrelated", Vote::kDelete}});
  EXPECT_EQ(MustSelect(policy, conflicts_[0]), Vote::kAbstain);
}

TEST_F(PolicyTest, ProtectedPredicatesRefuseDeletion) {
  Setup("p -> +x. p -> -x.", "p.");
  PolicyPtr policy = MakeProtectedPredicatesPolicy({"x"});
  EXPECT_EQ(MustSelect(policy, conflicts_[0]), Vote::kInsert);
  PolicyPtr other = MakeProtectedPredicatesPolicy({"y"});
  EXPECT_EQ(MustSelect(other, conflicts_[0]), Vote::kAbstain);
}

TEST_F(PolicyTest, ProtectedPredicatesEndToEnd) {
  // Inertia alone would delete `ledger` rows (absent from D); protecting
  // the predicate keeps the insertion.
  auto symbols = MakeSymbolTable();
  auto program =
      ParseProgram("p -> +ledger. p -> -ledger. p -> +tmp. p -> -tmp.",
                   symbols);
  ASSERT_TRUE(program.ok());
  auto db = ParseDatabase("p.", symbols);
  ASSERT_TRUE(db.ok());
  ParkOptions options;
  options.policy = MakeCompositePolicy(
      {MakeProtectedPredicatesPolicy({"ledger"}), MakeInertiaPolicy()});
  auto result = Park(*program, *db, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->database.ToString(), "{ledger, p}");
}

}  // namespace
}  // namespace park
