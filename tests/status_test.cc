#include "util/status.h"

#include <gtest/gtest.h>

#include <memory>

namespace park {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad rule");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad rule");
  EXPECT_EQ(s.ToString(), "invalid argument: bad rule");
}

TEST(StatusTest, OkConstructorDropsMessage) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.message(), "");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(AbortedError("x").code(), StatusCode::kAborted);
}

TEST(StatusTest, WithContextPrepends) {
  Status s = NotFoundError("relation emp");
  Status wrapped = s.WithContext("loading facts");
  EXPECT_EQ(wrapped.code(), StatusCode::kNotFound);
  EXPECT_EQ(wrapped.message(), "loading facts: relation emp");
  EXPECT_TRUE(Status::OK().WithContext("anything").ok());
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Result<int> Half(int n) {
  if (n % 2 != 0) return InvalidArgumentError("odd");
  return n / 2;
}

Result<int> Quarter(int n) {
  PARK_ASSIGN_OR_RETURN(int half, Half(n));
  PARK_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

Status CheckEven(int n) {
  PARK_RETURN_IF_ERROR(Half(n).status());
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto inner_fail = Quarter(6);  // 6/2=3, 3 is odd
  EXPECT_FALSE(inner_fail.ok());
  EXPECT_EQ(inner_fail.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(CheckEven(4).ok());
  EXPECT_FALSE(CheckEven(3).ok());
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kAborted), "aborted");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "resource exhausted");
}

}  // namespace
}  // namespace park
