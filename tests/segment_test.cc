// Columnar storage layer: dictionary round-trips, equality probes on
// duplicate-heavy and empty columns, and the determinism anchor — a
// compacted segment depends only on the tuple SET, never on the
// insert/erase history that produced it (docs/STORAGE.md).

#include "storage/segment.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "storage/relation.h"

namespace park {
namespace {

Tuple T2(int64_t a, int64_t b) { return Tuple{Value::Int(a), Value::Int(b)}; }

TEST(ColumnDictionaryTest, RoundTripsCodesAndValues) {
  // Unsorted, duplicate-heavy input: FromValues sorts and dedups.
  std::vector<Value> values = {Value::Int(7), Value::Int(3), Value::Int(7),
                               Value::Int(1), Value::Int(3), Value::Int(9)};
  ColumnDictionary dict = ColumnDictionary::FromValues(values);
  ASSERT_EQ(dict.size(), 4u);  // {1, 3, 7, 9}
  for (uint32_t code = 0; code < dict.size(); ++code) {
    auto back = dict.CodeFor(dict.ValueFor(code));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, code);
  }
  // Codes are ranks: code order == value order.
  for (uint32_t code = 0; code + 1 < dict.size(); ++code) {
    EXPECT_TRUE(dict.ValueFor(code) < dict.ValueFor(code + 1));
  }
  EXPECT_FALSE(dict.CodeFor(Value::Int(2)).has_value());
  EXPECT_FALSE(dict.CodeFor(Value::Int(100)).has_value());
}

TEST(ColumnDictionaryTest, EmptyDictionary) {
  ColumnDictionary dict = ColumnDictionary::FromValues({});
  EXPECT_TRUE(dict.empty());
  EXPECT_FALSE(dict.CodeFor(Value::Int(0)).has_value());
}

TEST(SegmentTest, EqualRangeOnDuplicateHeavyColumn) {
  // 40 rows, column 1 cycles through only 4 distinct values — every
  // equal range is 10 rows wide.
  std::vector<Tuple> tuples;
  for (int64_t i = 0; i < 40; ++i) tuples.push_back(T2(i, i % 4));
  std::sort(tuples.begin(), tuples.end());
  std::vector<const Tuple*> rows;
  for (const Tuple& t : tuples) rows.push_back(&t);
  Segment seg = Segment::Build(2, rows);
  ASSERT_EQ(seg.num_rows(), 40u);

  const Column& col = seg.column(1);
  for (int64_t v = 0; v < 4; ++v) {
    auto [lo, hi] = col.EqualRange(Value::Int(v));
    EXPECT_EQ(hi - lo, 10u);
    // Positions resolve to rows in ascending row order, all holding v.
    uint32_t prev_row = 0;
    for (uint32_t pos = lo; pos < hi; ++pos) {
      uint32_t row = col.RowAt(pos);
      if (pos > lo) {
        EXPECT_LT(prev_row, row);
      }
      prev_row = row;
      EXPECT_EQ(col.value(row), Value::Int(v));
    }
  }
  auto [lo, hi] = col.EqualRange(Value::Int(99));
  EXPECT_EQ(lo, hi);  // absent value: empty range
}

TEST(SegmentTest, EmptySegment) {
  Segment seg = Segment::Build(2, {});
  EXPECT_EQ(seg.num_rows(), 0u);
  auto [lo, hi] = seg.column(0).EqualRange(Value::Int(1));
  EXPECT_EQ(lo, hi);
  EXPECT_EQ(seg.DictEntries(), 0u);
}

TEST(SegmentTest, ZeroArityRelation) {
  Relation rel(0);
  rel.Insert(Tuple{});
  rel.CompactColumnar();
  Relation::ColumnarView view = rel.Columnar();
  ASSERT_NE(view.segment, nullptr);
  EXPECT_EQ(view.segment->num_rows(), 1u);
  EXPECT_EQ(view.segment->DictEntries(), 0u);
}

// Renders a compacted relation's segment as a portable byte string:
// per-column dictionary sizes, the row-major code matrix in segment row
// order, and every column's sorted permutation. Codes are value ranks,
// so equal renderings mean equal decoded contents. Two relations with
// the same tuple set must render identically whatever history produced
// them.
std::string RenderSegment(const Relation& rel) {
  Relation::ColumnarView view = rel.Columnar();
  if (view.segment == nullptr) return "<none>";
  std::string out;
  const Segment& seg = *view.segment;
  for (int c = 0; c < seg.arity(); ++c) {
    out += "d" + std::to_string(seg.column(c).dictionary().size()) + ";";
  }
  for (uint32_t r = 0; r < seg.num_rows(); ++r) {
    out += "(";
    for (int c = 0; c < seg.arity(); ++c) {
      out += std::to_string(seg.column(c).code(r)) + ",";
    }
    out += ")";
  }
  for (int c = 0; c < seg.arity(); ++c) {
    out += "|";
    for (uint32_t pos = 0; pos < seg.num_rows(); ++pos) {
      out += std::to_string(seg.column(c).RowAt(pos)) + ",";
    }
  }
  return out;
}

TEST(SegmentTest, CompactionIsHistoryIndependent) {
  // Same final set {(i, i%3) : i in [0,30), i odd} reached three ways:
  // straight inserts; inserts + erases of the evens; inserts in reverse
  // with interleaved compactions (deltas + tombstones live at compaction
  // points).
  Relation a(2);
  for (int64_t i = 1; i < 30; i += 2) a.Insert(T2(i, i % 3));
  a.CompactColumnar();

  Relation b(2);
  for (int64_t i = 0; i < 30; ++i) b.Insert(T2(i, i % 3));
  b.CompactColumnar();
  for (int64_t i = 0; i < 30; i += 2) b.Erase(T2(i, i % 3));
  b.CompactColumnar();

  Relation c(2);
  for (int64_t i = 29; i >= 1; i -= 2) {
    c.Insert(T2(i, i % 3));
    if (i % 7 == 1) c.CompactColumnar();  // interleave delta compactions
  }
  c.CompactColumnar();

  const std::string rendered = RenderSegment(a);
  EXPECT_EQ(rendered, RenderSegment(b));
  EXPECT_EQ(rendered, RenderSegment(c));
  EXPECT_EQ(a.segment_rows(), 15u);
  EXPECT_EQ(b.segment_rows(), 15u);
  EXPECT_EQ(c.segment_rows(), 15u);
}

TEST(SegmentTest, DeltaAndTombstonesMergeAtCompaction) {
  Relation rel(2);
  for (int64_t i = 0; i < 10; ++i) rel.Insert(T2(i, 0));
  rel.CompactColumnar();
  EXPECT_FALSE(rel.ColumnarDirty());
  EXPECT_EQ(rel.segment_rows(), 10u);

  // Mutations between compaction points dirty the view but leave the
  // built segment untouched.
  rel.Insert(T2(100, 0));
  rel.Erase(T2(3, 0));
  EXPECT_TRUE(rel.ColumnarDirty());
  EXPECT_EQ(rel.segment_rows(), 10u);

  const uint64_t before = rel.compactions();
  rel.CompactColumnar();
  EXPECT_EQ(rel.compactions(), before + 1);
  EXPECT_FALSE(rel.ColumnarDirty());
  EXPECT_EQ(rel.segment_rows(), 10u);  // +1 insert, -1 erase

  // The merged segment equals a from-scratch build of the same set.
  Relation fresh(2);
  rel.ForEach([&](const Tuple& t) { fresh.Insert(t); });
  fresh.CompactColumnar();
  EXPECT_EQ(RenderSegment(rel), RenderSegment(fresh));
}

TEST(SegmentTest, CompactIsNoOpWhenClean) {
  Relation rel(2);
  rel.Insert(T2(1, 2));
  rel.CompactColumnar();
  const uint64_t count = rel.compactions();
  rel.CompactColumnar();  // already compact: must not rebuild
  rel.CompactColumnar();
  EXPECT_EQ(rel.compactions(), count);
}

}  // namespace
}  // namespace park
