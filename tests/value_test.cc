#include "storage/value.h"

#include <gtest/gtest.h>

#include "storage/ground_atom.h"
#include "storage/tuple.h"

namespace park {
namespace {

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable table;
  SymbolId a = table.InternSymbol("alice");
  SymbolId b = table.InternSymbol("bob");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.InternSymbol("alice"), a);
  EXPECT_EQ(table.SymbolName(a), "alice");
  EXPECT_EQ(table.NumSymbols(), 2u);
}

TEST(SymbolTableTest, FindSymbol) {
  SymbolTable table;
  EXPECT_EQ(table.FindSymbol("x"), std::nullopt);
  SymbolId x = table.InternSymbol("x");
  EXPECT_EQ(table.FindSymbol("x"), x);
}

TEST(SymbolTableTest, PredicatesDistinguishedByArity) {
  SymbolTable table;
  PredicateId p1 = table.InternPredicate("p", 1);
  PredicateId p2 = table.InternPredicate("p", 2);
  EXPECT_NE(p1, p2);
  EXPECT_EQ(table.PredicateName(p1), "p");
  EXPECT_EQ(table.PredicateName(p2), "p");
  EXPECT_EQ(table.PredicateArity(p1), 1);
  EXPECT_EQ(table.PredicateArity(p2), 2);
  EXPECT_EQ(table.InternPredicate("p", 1), p1);
  EXPECT_EQ(table.FindPredicate("p", 2), p2);
  EXPECT_EQ(table.FindPredicate("p", 3), std::nullopt);
}

TEST(ValueTest, TypePredicates) {
  SymbolTable table;
  Value sym = Value::Symbol(table.InternSymbol("a"));
  Value num = Value::Int(-42);
  Value str = Value::String(table.InternSymbol("hello world"));
  EXPECT_TRUE(sym.is_symbol());
  EXPECT_TRUE(num.is_int());
  EXPECT_TRUE(str.is_string());
  EXPECT_EQ(num.int_value(), -42);
}

TEST(ValueTest, EqualityIsTypeAndPayload) {
  SymbolTable table;
  SymbolId id = table.InternSymbol("a");
  EXPECT_EQ(Value::Symbol(id), Value::Symbol(id));
  // Same interned id but different type tag: not equal.
  EXPECT_NE(Value::Symbol(id), Value::String(id));
  EXPECT_NE(Value::Int(0), Value::Symbol(id));
  EXPECT_EQ(Value::Int(7), Value::Int(7));
  EXPECT_NE(Value::Int(7), Value::Int(8));
}

TEST(ValueTest, OrderingIsTotal) {
  SymbolTable table;
  Value s0 = Value::Symbol(table.InternSymbol("a"));
  Value s1 = Value::Symbol(table.InternSymbol("b"));
  Value i = Value::Int(-5);
  Value str = Value::String(table.InternSymbol("z"));
  EXPECT_LT(s0, s1);
  EXPECT_LT(s1, i);    // symbols < ints
  EXPECT_LT(i, str);   // ints < strings
  EXPECT_LT(Value::Int(-10), Value::Int(3));  // signed comparison
}

TEST(ValueTest, ToString) {
  SymbolTable table;
  EXPECT_EQ(Value::Symbol(table.InternSymbol("alice")).ToString(table),
            "alice");
  EXPECT_EQ(Value::Int(-3).ToString(table), "-3");
  EXPECT_EQ(Value::String(table.InternSymbol("a \"b\" \\c")).ToString(table),
            "\"a \\\"b\\\" \\\\c\"");
}

TEST(ValueTest, HashConsistentWithEquality) {
  SymbolTable table;
  SymbolId id = table.InternSymbol("a");
  EXPECT_EQ(Value::Symbol(id).Hash(), Value::Symbol(id).Hash());
  EXPECT_NE(Value::Symbol(id).Hash(), Value::String(id).Hash());
}

TEST(ValueTest, ConstantFromTextMatchesParserRules) {
  SymbolTable table;
  EXPECT_EQ(ConstantFromText("42", table), Value::Int(42));
  EXPECT_EQ(ConstantFromText("-7", table), Value::Int(-7));
  EXPECT_EQ(ConstantFromText("0", table), Value::Int(0));
  Value alice = ConstantFromText("alice", table);
  EXPECT_EQ(alice, Value::Symbol(*table.FindSymbol("alice")));
  // Not actually numeric: falls back to a symbol.
  EXPECT_TRUE(ConstantFromText("-", table).is_symbol());
  EXPECT_TRUE(ConstantFromText("12x", table).is_symbol());
  EXPECT_TRUE(ConstantFromText("x12", table).is_symbol());
}

TEST(TupleTest, BasicAccessors) {
  Tuple t{Value::Int(1), Value::Int(2)};
  EXPECT_EQ(t.arity(), 2);
  EXPECT_FALSE(t.empty());
  EXPECT_EQ(t[0], Value::Int(1));
  Tuple empty;
  EXPECT_EQ(empty.arity(), 0);
  EXPECT_TRUE(empty.empty());
}

TEST(TupleTest, EqualityAndOrdering) {
  Tuple a{Value::Int(1), Value::Int(2)};
  Tuple b{Value::Int(1), Value::Int(2)};
  Tuple c{Value::Int(1), Value::Int(3)};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_LT(Tuple{Value::Int(1)}, a);  // shorter is less (lexicographic)
}

TEST(TupleTest, ToString) {
  SymbolTable table;
  Tuple t{Value::Symbol(table.InternSymbol("a")), Value::Int(9)};
  EXPECT_EQ(t.ToString(table), "(a, 9)");
  EXPECT_EQ(Tuple{}.ToString(table), "");
}

TEST(TupleTest, HashDiffersByOrder) {
  Tuple ab{Value::Int(1), Value::Int(2)};
  Tuple ba{Value::Int(2), Value::Int(1)};
  EXPECT_NE(ab.Hash(), ba.Hash());
}

TEST(GroundAtomTest, Basics) {
  SymbolTable table;
  PredicateId p = table.InternPredicate("p", 2);
  PredicateId q = table.InternPredicate("q", 0);
  GroundAtom pa(p, Tuple{Value::Int(1), Value::Int(2)});
  GroundAtom qa(q, Tuple{});
  EXPECT_EQ(pa.ToString(table), "p(1, 2)");
  EXPECT_EQ(qa.ToString(table), "q");
  EXPECT_EQ(pa.arity(), 2);
  EXPECT_NE(pa, qa);
  EXPECT_LT(pa, qa);  // predicate id order
}

}  // namespace
}  // namespace park
