// Exact reproduction of every worked example in the paper (experiment ids
// E1-E9 in DESIGN.md). Where the trace matters the tests compare the full
// step-by-step i-interpretation history against the paper's listings.
//
// Rendering convention: interpretations are sorted unmarked-first, then
// `+` marks, then `-` marks, each class alphabetically; the paper's set
// notation is order-free, so this is only a canonicalization.

#include "test_util.h"

namespace park {
namespace {

using ::park::testing_util::MustPark;
using ::park::testing_util::MustParseDatabase;
using ::park::testing_util::MustParseProgram;
using ::park::testing_util::ParkToString;

ParkOptions FullTraceOptions(PolicyPtr policy = nullptr) {
  ParkOptions options;
  options.policy = std::move(policy);
  options.trace_level = TraceLevel::kFull;
  return options;
}

// --- E1: §4.1 program P1 under the principle of inertia ---

constexpr char kP1[] = R"(
  r1: p -> +q.
  r2: p -> -a.
  r3: q -> +a.
)";

TEST(PaperE1, P1FinalDatabase) {
  // "Finally, we effectively apply the remaining non conflicting actions,
  //  in our case, the unique action +q, getting the result database state
  //  {p, q}."
  EXPECT_EQ(ParkToString(kP1, "p."), "{p, q}");
}

TEST(PaperE1, P1TraceAndBlocked) {
  ParkResult result = MustPark(kP1, "p.", FullTraceOptions());
  auto history = result.trace.InterpretationHistory();
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history[0], (std::vector<std::string>{"p", "+q", "-a"}));
  // The conflicting step the paper shows as {p, +q, -a, +a}.
  EXPECT_EQ(history[1], (std::vector<std::string>{"p", "+a", "+q", "-a"}));
  // After blocking r3 the computation restarts and re-reaches {p, +q, -a}.
  EXPECT_EQ(history[2], (std::vector<std::string>{"p", "+q", "-a"}));
  EXPECT_EQ(result.blocked, (std::vector<std::string>{"(r3)"}));
  EXPECT_EQ(result.stats.restarts, 1u);
}

// --- E2: §4.1 program P2 — stale derivations must be withdrawn ---

constexpr char kP2[] = R"(
  r1: p -> +q.
  r2: p -> -a.
  r3: q -> +a.
  r4: !a -> +r.
  r5: a -> +s.
)";

TEST(PaperE2, P2DesiredResult) {
  // "The desired result database state is thus {p, q, r}" — and in
  // particular NOT {p, q, r, s}, which the naive semantics produces.
  EXPECT_EQ(ParkToString(kP2, "p."), "{p, q, r}");
}

TEST(PaperE2, P2NaiveBaselineGetsItWrong) {
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(kP2, symbols);
  Database db = MustParseDatabase("p.", symbols);
  auto naive = NaiveCancelSemantics(program, db);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  // "After effectively incorporating the updates, we get the result
  //  database state {p, q, r, s}. But is this what we really want?"
  EXPECT_EQ(naive->database.ToString(), "{p, q, r, s}");
  EXPECT_EQ(naive->cancelled_pairs, 1u);
  // The naive fixpoint the paper lists after step 3:
  // {p, +q, -a, +r, +a, +s}.
  EXPECT_EQ(naive->fixpoint_literals,
            (std::vector<std::string>{"p", "+a", "+q", "+r", "+s", "-a"}));
}

TEST(PaperE2, P2Blocked) {
  ParkResult result = MustPark(kP2, "p.", FullTraceOptions());
  EXPECT_EQ(result.blocked, (std::vector<std::string>{"(r3)"}));
  EXPECT_EQ(result.stats.restarts, 1u);
}

// --- E3: §4.1 program P3 — false conflicts must not materialize ---

constexpr char kP3[] = R"(
  r1: p -> +q.
  r2: p -> -q.
  r3: q -> +a.
  r4: q -> -a.
  r5: p -> +a.
)";

TEST(PaperE3, P3FalseConflictAvoided) {
  // "The correct result is therefore {p, +a}, or, after incorporating the
  //  updates, {p, a}."
  EXPECT_EQ(ParkToString(kP3, "p."), "{a, p}");
}

TEST(PaperE3, P3TraceShowsOnlyTheRealConflict) {
  ParkResult result = MustPark(kP3, "p.", FullTraceOptions());
  // Only q is ever in conflict; a never becomes ambiguous because no
  // consequence may be drawn from the ambiguous q.
  EXPECT_EQ(result.blocked, (std::vector<std::string>{"(r1)"}));
  auto history = result.trace.InterpretationHistory();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0],
            (std::vector<std::string>{"p", "+a", "+q", "-q"}));
  EXPECT_EQ(history[1], (std::vector<std::string>{"p", "+a", "-q"}));
}

TEST(PaperE3, P3NaiveBaselineCancelsTheFalseConflict) {
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(kP3, symbols);
  Database db = MustParseDatabase("p.", symbols);
  auto naive = NaiveCancelSemantics(program, db);
  ASSERT_TRUE(naive.ok());
  // The naive semantics sees the false ambiguity on `a` and cancels it,
  // losing the +a that rule 5 legitimately derives.
  EXPECT_EQ(naive->database.ToString(), "{p}");
  EXPECT_EQ(naive->cancelled_pairs, 2u);
}

// --- E4: §4.2 irreflexive, transitivity-free graph ---

constexpr char kGraph[] = R"(
  r1: p(X), p(Y) -> +q(X, Y).
  r2: q(X, X) -> -q(X, X).
  r3: q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y).
)";

/// The paper's SELECT: "We decide to block all instances of rule r1 with
/// x = y and those connecting a and c. In all other cases, the instances
/// of r3 are blocked."
PolicyPtr PaperGraphPolicy(const std::shared_ptr<SymbolTable>& symbols) {
  SymbolId a = symbols->InternSymbol("a");
  SymbolId c = symbols->InternSymbol("c");
  return MakeLambdaPolicy(
      "paper-graph",
      [a, c](const PolicyContext&, const Conflict& conflict) -> Result<Vote> {
        const Tuple& args = conflict.atom.args();
        const Value& x = args[0];
        const Value& y = args[1];
        if (x == y) return Vote::kDelete;
        bool connects_a_c =
            (x == Value::Symbol(a) && y == Value::Symbol(c)) ||
            (x == Value::Symbol(c) && y == Value::Symbol(a));
        return connects_a_c ? Vote::kDelete : Vote::kInsert;
      });
}

TEST(PaperE4, GraphExampleResult) {
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(kGraph, symbols);
  Database db = MustParseDatabase("p(a). p(b). p(c).", symbols);
  ParkOptions options = FullTraceOptions(PaperGraphPolicy(symbols));
  auto result = Park(program, db, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // "PARK(P, D) = {p(a), p(b), p(c), q(a,b), q(b,a), q(b,c), q(c,b)}"
  EXPECT_EQ(result->database.ToString(),
            "{p(a), p(b), p(c), q(a, b), q(b, a), q(b, c), q(c, b)}");
  // One conflict-resolution round resolves all nine conflicts.
  EXPECT_EQ(result->stats.restarts, 1u);
  EXPECT_EQ(result->stats.conflicts_resolved, 9u);
  // Blocked: 5 instances of r1 (diagonal + the two a--c arcs) and 3
  // instances of r3 for each of the 4 surviving arcs.
  EXPECT_EQ(result->stats.blocked_instances, 17u);
}

TEST(PaperE4, GraphExampleFirstInterpretation) {
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(kGraph, symbols);
  Database db = MustParseDatabase("p(a). p(b). p(c).", symbols);
  ParkOptions options = FullTraceOptions(PaperGraphPolicy(symbols));
  auto result = Park(program, db, options);
  ASSERT_TRUE(result.ok());
  auto history = result->trace.InterpretationHistory();
  ASSERT_GE(history.size(), 1u);
  // I1: all nine q-arcs asserted.
  EXPECT_EQ(history[0],
            (std::vector<std::string>{
                "p(a)", "p(b)", "p(c)", "+q(a, a)", "+q(a, b)", "+q(a, c)",
                "+q(b, a)", "+q(b, b)", "+q(b, c)", "+q(c, a)", "+q(c, b)",
                "+q(c, c)"}));
}

// --- E5: §4.3 first ECA example (conflict-free, event literal) ---

constexpr char kEca1[] = R"(
  r1: p(X) -> +q(X).
  r2: q(X) -> +r(X).
  r3: +r(X) -> -s(X).
)";

TEST(PaperE5, EcaExampleOne) {
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(kEca1, symbols);
  Database db = MustParseDatabase("p(a). s(a). s(b).", symbols);
  std::vector<Update> updates{
      {ActionKind::kInsert,
       ParseGroundAtom("q(b)", symbols).value()}};
  ParkOptions options = FullTraceOptions();
  auto result = Park(db, program, updates, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // "PARK(D, P, U) = {p(a), q(a), q(b), r(a), r(b)}"
  EXPECT_EQ(result->database.ToString(),
            "{p(a), q(a), q(b), r(a), r(b)}");
  auto history = result->trace.InterpretationHistory();
  ASSERT_EQ(history.size(), 3u);
  // I1 = {p(a), +q(a), +q(b), s(a), s(b)}
  EXPECT_EQ(history[0],
            (std::vector<std::string>{"p(a)", "s(a)", "s(b)", "+q(a)",
                                      "+q(b)"}));
  // I2 adds +r(a), +r(b)
  EXPECT_EQ(history[1],
            (std::vector<std::string>{"p(a)", "s(a)", "s(b)", "+q(a)",
                                      "+q(b)", "+r(a)", "+r(b)"}));
  // I3 adds -s(a), -s(b)
  EXPECT_EQ(history[2],
            (std::vector<std::string>{"p(a)", "s(a)", "s(b)", "+q(a)",
                                      "+q(b)", "+r(a)", "+r(b)", "-s(a)",
                                      "-s(b)"}));
  EXPECT_EQ(result->stats.restarts, 0u);
}

// --- E6: §4.3 second ECA example (update/rule conflict, inertia) ---

constexpr char kEca2[] = R"(
  r1: q(X, a) -> -p(X, a).
  r2: q(a, X) -> +r(a, X).
  r3: +r(X, a) -> +p(X, a).
)";

TEST(PaperE6, EcaExampleTwo) {
  auto symbols = MakeSymbolTable();
  Program program = MustParseProgram(kEca2, symbols);
  Database db = MustParseDatabase("p(a, a). p(a, b). p(a, c).", symbols);
  std::vector<Update> updates{
      {ActionKind::kInsert,
       ParseGroundAtom("q(a, a)", symbols).value()}};
  ParkOptions options = FullTraceOptions();
  auto result = Park(db, program, updates, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The paper prints the result as {p(a,a), p(a,b), p(a,c), r(a,a)};
  // by its own I5 listing (which contains the transaction's q(a,a)) and
  // the definition of incorp, q(a,a) belongs in the result as well — the
  // paper's final line simply dropped it. See EXPERIMENTS.md E6.
  EXPECT_EQ(result->database.ToString(),
            "{p(a, a), p(a, b), p(a, c), q(a, a), r(a, a)}");
  // The inconsistency is detected involving rules r1 and r3; inertia keeps
  // p(a,a) (present in D), so the deleting side r1 is blocked.
  EXPECT_EQ(result->blocked,
            (std::vector<std::string>{"(r1, [X <- a])"}));
  EXPECT_EQ(result->stats.restarts, 1u);

  auto history = result->trace.InterpretationHistory();
  // I1, I2, I3 (clash), then the restarted I4', I5', I6' (r3 refires
  // consistently after r1 is blocked — one step more than the paper's
  // listing, which stopped at I5 with both r1 and r3 blocked contrary to
  // the formal definition of blocked(); the result database agrees).
  ASSERT_EQ(history.size(), 6u);
  EXPECT_EQ(history[0], (std::vector<std::string>{
                            "p(a, a)", "p(a, b)", "p(a, c)", "+q(a, a)"}));
  EXPECT_EQ(history[1],
            (std::vector<std::string>{"p(a, a)", "p(a, b)", "p(a, c)",
                                      "+q(a, a)", "+r(a, a)", "-p(a, a)"}));
  EXPECT_EQ(history[2],
            (std::vector<std::string>{"p(a, a)", "p(a, b)", "p(a, c)",
                                      "+p(a, a)", "+q(a, a)", "+r(a, a)",
                                      "-p(a, a)"}));
}

// --- E7: §5 example under the principle of inertia ---

constexpr char kSection5[] = R"(
  r1: p -> +a.
  r2: p -> +q.
  r3: a -> +b.
  r4: a -> -q.
  r5: b -> +q.
)";

TEST(PaperE7, Section5Inertia) {
  ParkResult result = MustPark(kSection5, "p.", FullTraceOptions());
  // "At this state the final fixpoint <{r2, r5}, {p, +a, -q, +b}> is
  //  reached letting {p, a, b} be the new database instance."
  EXPECT_EQ(result.database.ToString(), "{a, b, p}");
  EXPECT_EQ(result.blocked, (std::vector<std::string>{"(r2)", "(r5)"}));

  auto history = result.trace.InterpretationHistory();
  ASSERT_EQ(history.size(), 7u);
  EXPECT_EQ(history[0], (std::vector<std::string>{"p", "+a", "+q"}));
  EXPECT_EQ(history[1],
            (std::vector<std::string>{"p", "+a", "+b", "+q", "-q"}));
  EXPECT_EQ(history[2], (std::vector<std::string>{"p", "+a"}));
  EXPECT_EQ(history[3], (std::vector<std::string>{"p", "+a", "+b", "-q"}));
  EXPECT_EQ(history[4],
            (std::vector<std::string>{"p", "+a", "+b", "+q", "-q"}));
  EXPECT_EQ(history[5], (std::vector<std::string>{"p", "+a"}));
  EXPECT_EQ(history[6], (std::vector<std::string>{"p", "+a", "+b", "-q"}));
  EXPECT_EQ(result.stats.restarts, 2u);
}

// --- E8: §5 counterintuitive-inertia example ---

constexpr char kCounterintuitive[] = R"(
  r1: a -> +b.
  r2: a -> +d.
  r3: b -> +c.
  r4: b -> -d.
  r5: c -> -b.
)";

TEST(PaperE8, Section5CounterintuitiveInertia) {
  ParkResult result = MustPark(kCounterintuitive, "a.", FullTraceOptions());
  // "The final result is {a} and differs from the expected — more
  //  intuitive — {a, +d}."
  EXPECT_EQ(result.database.ToString(), "{a}");
  EXPECT_EQ(result.blocked, (std::vector<std::string>{"(r1)", "(r2)"}));
  EXPECT_EQ(result.stats.restarts, 2u);
}

// --- E9: §5 example under rule priority ---

TEST(PaperE9, Section5RulePriority) {
  // "we assume that rule ri has priority i" — the default priority is the
  // 1-based program position, so no annotations are needed.
  ParkOptions options = FullTraceOptions(MakeRulePriorityPolicy());
  ParkResult result = MustPark(kSection5, "p.", options);
  // "resulting in the final database instance {p, a, b, q}"
  EXPECT_EQ(result.database.ToString(), "{a, b, p, q}");
  EXPECT_EQ(result.blocked, (std::vector<std::string>{"(r2)", "(r4)"}));

  auto history = result.trace.InterpretationHistory();
  ASSERT_EQ(history.size(), 8u);
  EXPECT_EQ(history[0], (std::vector<std::string>{"p", "+a", "+q"}));
  EXPECT_EQ(history[1],
            (std::vector<std::string>{"p", "+a", "+b", "+q", "-q"}));
  EXPECT_EQ(history[2], (std::vector<std::string>{"p", "+a"}));
  EXPECT_EQ(history[3], (std::vector<std::string>{"p", "+a", "+b", "-q"}));
  EXPECT_EQ(history[4],
            (std::vector<std::string>{"p", "+a", "+b", "+q", "-q"}));
  EXPECT_EQ(history[5], (std::vector<std::string>{"p", "+a"}));
  EXPECT_EQ(history[6], (std::vector<std::string>{"p", "+a", "+b"}));
  EXPECT_EQ(history[7], (std::vector<std::string>{"p", "+a", "+b", "+q"}));
}

TEST(PaperE9, ExplicitPriorityAnnotationsOverrideOrder) {
  // Reversing the priorities via annotations flips the outcome of the
  // first conflict: +q (now prio 4) beats -q (now prio 2).
  constexpr char kReversed[] = R"(
    r1 [prio=5]: p -> +a.
    r2 [prio=4]: p -> +q.
    r3 [prio=3]: a -> +b.
    r4 [prio=2]: a -> -q.
    r5 [prio=1]: b -> +q.
  )";
  ParkOptions options;
  options.policy = MakeRulePriorityPolicy();
  ParkResult result = MustPark(kReversed, "p.", options);
  EXPECT_EQ(result.database.ToString(), "{a, b, p, q}");
  EXPECT_EQ(result.blocked, (std::vector<std::string>{"(r4)"}));
}

}  // namespace
}  // namespace park
