#!/usr/bin/env python3
"""Validates the JSON documents the PARK observability layer emits.

Usage:
    tools/check_stats_schema.py FILE [FILE...]

Each FILE is dispatched on its "schema" tag:

  park-stats-v1                -- ParkStats::ToJson (parkcli --stats-json)
  park-bench-parallel-v1       -- bench_parallel
  park-bench-planner-v1        -- bench_planner
  park-bench-paper-examples-v1 -- bench_paper_examples
  park-bench-columnar-v1       -- bench_columnar (tuple vs batch exec)
  park-bench-scheduler-v1      -- bench_scheduler (dependency scheduler
                                  on vs off on the kilorule workload)
  park-bench-serving-v1        -- bench_serve (group commit + snapshot
                                  readers against the Session front-end)
  park-bench-incremental-v1    -- bench_incremental (maintenance on vs
                                  from-scratch over multi-commit scripts)

Exit status 0 iff every file parses and matches its schema. The checker
is deliberately stdlib-only (json + sys) so it runs on a bare CI image;
it checks structure and types, not values (CI passes a --smoke run whose
timings are meaningless).

The authoritative schema documentation lives in docs/OBSERVABILITY.md;
keep the two in sync — stats_invariance_test.cc pins the C++ emitter to
the same shape.
"""

import json
import sys

# Required key -> type(s) for each object in the document. `int` also
# accepts bools in Python; guard explicitly.


def _is_int(v):
    return isinstance(v, int) and not isinstance(v, bool)


def _is_num(v):
    return _is_int(v) or isinstance(v, float)


def _check_keys(errors, where, obj, spec, allow_extra=False):
    if not isinstance(obj, dict):
        errors.append(f"{where}: expected object, got {type(obj).__name__}")
        return
    for key, pred, desc in spec:
        if key not in obj:
            errors.append(f"{where}: missing key '{key}'")
        elif not pred(obj[key]):
            errors.append(f"{where}.{key}: expected {desc}, "
                          f"got {json.dumps(obj[key])[:40]}")
    if not allow_extra:
        known = {key for key, _, _ in spec}
        for key in obj:
            if key not in known:
                errors.append(f"{where}: unexpected key '{key}'")


PARK_STATS_COUNTERS = [
    "gamma_steps", "restarts", "conflicts_resolved", "blocked_instances",
    "derived_marks", "policy_invocations", "rule_evaluations",
]
PARK_STATS_PARALLEL = [
    "num_threads", "sections", "tasks", "sliced_units", "slices",
    "max_queue_depth", "mean_task_latency_ns",
]
PARK_STATS_TIMINGS = [
    "total_ns", "gamma_ns", "apply_ns", "conflict_ns", "policy_ns",
    "parallel_match_ns", "parallel_merge_ns", "pool_busy_ns",
]
PARK_STATS_PLANNER_COUNTERS = [
    "plans_compiled", "cache_hits", "replans", "estimated_rows",
    "actual_rows",
]
# Governance accounting: limits are the configured budgets (0 = none);
# peak/charged report what the run actually consumed.
PARK_STATS_RESOURCE = [
    "memory_limit_bytes", "peak_memory_bytes", "derivation_limit",
    "derivations_charged",
]
# Commit-pipeline I/O retry accounting (journal append/flush/sync).
PARK_STATS_IO_RETRY = [
    "attempts", "retries", "backoff_ms_total", "retries_exhausted",
]
# Columnar storage accounting (segments live at run end, compaction work).
PARK_STATS_STORAGE = [
    "segments", "segment_rows", "compactions", "dict_entries",
]
# Batch executor row counters (all zero under tuple-at-a-time execution).
PARK_STATS_EXEC = [
    "batch_rows", "probe_rows", "merge_rows",
]
# Dependency-scheduler accounting (docs/SCHEDULER.md): rules examined
# for affectedness vs pruned, static stratum count, per-step stage sum.
PARK_STATS_SCHEDULER = [
    "rules_considered", "rules_skipped", "strata", "pipeline_stages",
]
# Serving-layer accounting (docs/SERVING.md): group-commit batches and
# snapshot pins. batch_size_hist is checked separately (array, buckets
# 1 / 2 / 3-4 / 5-8 / 9-16 / 17+).
PARK_STATS_SERVING = [
    "batches", "batched_txns", "max_batch_size", "poisoned_batches",
    "individual_retries", "snapshots_opened", "snapshots_pinned",
    "segment_generations_retained",
]
# Incremental-maintenance accounting (docs/INCREMENTAL.md): commits
# served by the seeded closure vs transparent full-recompute fallbacks.
PARK_STATS_MAINTENANCE = [
    "maintained_commits", "atoms_overdeleted", "atoms_rederived",
    "cone_rules", "full_recompute_fallbacks",
]

# Every park-bench-*-v1 document shares the bench_json.h envelope, which
# records the machine and build so a flat speedup curve (or a 1-core CI
# box) is explainable from the JSON alone.
BENCH_ENVELOPE_SPEC = [
    ("hardware_concurrency", _is_int, "integer"),
    ("cpu_model", lambda v: isinstance(v, str), "string"),
    ("build_type", lambda v: v in ("release", "debug"),
     '"release" or "debug"'),
]


def check_park_stats(errors, doc):
    _check_keys(errors, "$", doc, [
        ("schema", lambda v: v == "park-stats-v1", '"park-stats-v1"'),
        ("counters", lambda v: isinstance(v, dict), "object"),
        ("parallel", lambda v: isinstance(v, dict), "object"),
        ("planner", lambda v: isinstance(v, dict), "object"),
        ("scheduler", lambda v: isinstance(v, dict), "object"),
        ("resource", lambda v: isinstance(v, dict), "object"),
        ("io_retry", lambda v: isinstance(v, dict), "object"),
        ("storage", lambda v: isinstance(v, dict), "object"),
        ("exec", lambda v: isinstance(v, dict), "object"),
        ("serving", lambda v: isinstance(v, dict), "object"),
        ("maintenance", lambda v: isinstance(v, dict), "object"),
        ("timings", lambda v: isinstance(v, dict), "object"),
    ])
    if not isinstance(doc, dict):
        return
    _check_keys(errors, "$.counters", doc.get("counters", {}),
                [(k, _is_int, "integer") for k in PARK_STATS_COUNTERS])
    _check_keys(errors, "$.parallel", doc.get("parallel", {}),
                [(k, _is_int, "integer") for k in PARK_STATS_PARALLEL])
    planner_spec = [("mode", lambda v: v in ("heuristic", "cost_based"),
                     '"heuristic" or "cost_based"')]
    planner_spec += [(k, _is_int, "integer")
                     for k in PARK_STATS_PLANNER_COUNTERS]
    _check_keys(errors, "$.planner", doc.get("planner", {}), planner_spec)
    scheduler_spec = [("mode", lambda v: v in ("off", "dependency"),
                       '"off" or "dependency"')]
    scheduler_spec += [(k, _is_int, "integer")
                       for k in PARK_STATS_SCHEDULER]
    _check_keys(errors, "$.scheduler", doc.get("scheduler", {}),
                scheduler_spec)
    _check_keys(errors, "$.resource", doc.get("resource", {}),
                [(k, _is_int, "integer") for k in PARK_STATS_RESOURCE])
    _check_keys(errors, "$.io_retry", doc.get("io_retry", {}),
                [(k, _is_int, "integer") for k in PARK_STATS_IO_RETRY])
    _check_keys(errors, "$.storage", doc.get("storage", {}),
                [(k, _is_int, "integer") for k in PARK_STATS_STORAGE])
    exec_spec = [("mode", lambda v: v in ("tuple", "batch"),
                  '"tuple" or "batch"')]
    exec_spec += [(k, _is_int, "integer") for k in PARK_STATS_EXEC]
    _check_keys(errors, "$.exec", doc.get("exec", {}), exec_spec)
    serving_spec = [("batch_size_hist",
                     lambda v: isinstance(v, list) and len(v) == 6
                     and all(_is_int(b) for b in v),
                     "array of 6 integers")]
    serving_spec += [(k, _is_int, "integer") for k in PARK_STATS_SERVING]
    _check_keys(errors, "$.serving", doc.get("serving", {}), serving_spec)
    maintenance_spec = [("mode", lambda v: v in ("off", "incremental"),
                         '"off" or "incremental"')]
    maintenance_spec += [(k, _is_int, "integer")
                         for k in PARK_STATS_MAINTENANCE]
    _check_keys(errors, "$.maintenance", doc.get("maintenance", {}),
                maintenance_spec)
    timings_spec = [("collected", lambda v: isinstance(v, bool), "bool")]
    timings_spec += [(k, _is_int, "integer") for k in PARK_STATS_TIMINGS]
    _check_keys(errors, "$.timings", doc.get("timings", {}), timings_spec)


BENCH_CONFIG_SPEC = [
    ("threads", _is_int, "integer"),
    ("best_ms", _is_num, "number"),
    ("speedup", _is_num, "number"),
    ("gamma_steps", _is_int, "integer"),
    ("parallel_sections", _is_int, "integer"),
    ("parallel_tasks", _is_int, "integer"),
    ("parallel_sliced_units", _is_int, "integer"),
    ("parallel_slices", _is_int, "integer"),
]


def check_bench_parallel(errors, doc):
    _check_keys(errors, "$", doc, BENCH_ENVELOPE_SPEC + [
        ("schema", lambda v: v == "park-bench-parallel-v1",
         '"park-bench-parallel-v1"'),
        ("smoke", lambda v: isinstance(v, bool), "bool"),
        ("bit_identical", lambda v: v is True, "true"),
        # payroll@4 regression gate: "skipped" (recorded, not silent) on
        # hosts without 4 hardware threads; a failed gate exits non-zero
        # before any JSON is written, so "failed" never appears.
        ("gate", lambda v: v in ("passed", "skipped"),
         '"passed" or "skipped"'),
        ("cases", lambda v: isinstance(v, list) and v, "non-empty array"),
    ])
    for i, case in enumerate(doc.get("cases") or []):
        where = f"$.cases[{i}]"
        _check_keys(errors, where, case, [
            ("name", lambda v: isinstance(v, str) and v, "non-empty string"),
            ("configs", lambda v: isinstance(v, list) and v,
             "non-empty array"),
        ])
        if not isinstance(case, dict):
            continue
        for j, config in enumerate(case.get("configs") or []):
            _check_keys(errors, f"{where}.configs[{j}]", config,
                        BENCH_CONFIG_SPEC)


PLANNER_CONFIG_SPEC = [
    ("planner", lambda v: v in ("heuristic", "cost_based"),
     '"heuristic" or "cost_based"'),
    ("best_ms", _is_num, "number"),
    ("speedup", _is_num, "number"),
    ("gamma_steps", _is_int, "integer"),
    ("plans_compiled", _is_int, "integer"),
    ("replans", _is_int, "integer"),
    ("estimated_rows", _is_int, "integer"),
    ("actual_rows", _is_int, "integer"),
]


def check_bench_planner(errors, doc):
    _check_keys(errors, "$", doc, BENCH_ENVELOPE_SPEC + [
        ("schema", lambda v: v == "park-bench-planner-v1",
         '"park-bench-planner-v1"'),
        ("smoke", lambda v: isinstance(v, bool), "bool"),
        ("set_identical", lambda v: v is True, "true"),
        ("cases", lambda v: isinstance(v, list) and v, "non-empty array"),
    ])
    for i, case in enumerate(doc.get("cases") or []):
        where = f"$.cases[{i}]"
        _check_keys(errors, where, case, [
            ("name", lambda v: isinstance(v, str) and v, "non-empty string"),
            ("configs", lambda v: isinstance(v, list) and v,
             "non-empty array"),
        ])
        if not isinstance(case, dict):
            continue
        for j, config in enumerate(case.get("configs") or []):
            _check_keys(errors, f"{where}.configs[{j}]", config,
                        PLANNER_CONFIG_SPEC)


def check_bench_paper_examples(errors, doc):
    _check_keys(errors, "$", doc, BENCH_ENVELOPE_SPEC + [
        ("schema", lambda v: v == "park-bench-paper-examples-v1",
         '"park-bench-paper-examples-v1"'),
        ("matches", _is_int, "integer"),
        ("total", _is_int, "integer"),
        ("cases", lambda v: isinstance(v, list) and v, "non-empty array"),
    ])
    for i, case in enumerate(doc.get("cases") or []):
        _check_keys(errors, f"$.cases[{i}]", case, [
            ("id", lambda v: isinstance(v, str) and v, "non-empty string"),
            ("description", lambda v: isinstance(v, str), "string"),
            ("match", lambda v: isinstance(v, bool), "bool"),
            ("time_us", _is_num, "number"),
            ("computed", lambda v: isinstance(v, str), "string"),
        ], allow_extra=True)  # optional "note"


COLUMNAR_CONFIG_SPEC = [
    ("exec", lambda v: v in ("tuple", "batch"), '"tuple" or "batch"'),
    ("best_ms", _is_num, "number"),
    ("speedup", _is_num, "number"),
    ("gamma_steps", _is_int, "integer"),
    ("batch_rows", _is_int, "integer"),
    ("probe_rows", _is_int, "integer"),
    ("merge_rows", _is_int, "integer"),
    ("storage_compactions", _is_int, "integer"),
    ("storage_segment_rows", _is_int, "integer"),
]


def check_bench_columnar(errors, doc):
    _check_keys(errors, "$", doc, BENCH_ENVELOPE_SPEC + [
        ("schema", lambda v: v == "park-bench-columnar-v1",
         '"park-bench-columnar-v1"'),
        ("smoke", lambda v: isinstance(v, bool), "bool"),
        ("set_identical", lambda v: v is True, "true"),
        ("cases", lambda v: isinstance(v, list) and v, "non-empty array"),
    ])
    for i, case in enumerate(doc.get("cases") or []):
        where = f"$.cases[{i}]"
        _check_keys(errors, where, case, [
            ("name", lambda v: isinstance(v, str) and v, "non-empty string"),
            ("gamma_mode",
             lambda v: v in ("naive", "delta_filtered", "semi_naive"),
             "gamma mode name"),
            ("configs", lambda v: isinstance(v, list) and v,
             "non-empty array"),
        ])
        if not isinstance(case, dict):
            continue
        for j, config in enumerate(case.get("configs") or []):
            _check_keys(errors, f"{where}.configs[{j}]", config,
                        COLUMNAR_CONFIG_SPEC)


SCHEDULER_CONFIG_SPEC = [
    ("gamma_mode", lambda v: v in ("delta_filtered", "semi_naive"),
     '"delta_filtered" or "semi_naive"'),
    ("threads", _is_int, "integer"),
    ("scheduler_off_ms", _is_num, "number"),
    ("scheduler_on_ms", _is_num, "number"),
    ("speedup", _is_num, "number"),
    ("gamma_steps", _is_int, "integer"),
    ("rules_considered", _is_int, "integer"),
    ("rules_skipped", _is_int, "integer"),
    ("strata", _is_int, "integer"),
    ("pipeline_stages", _is_int, "integer"),
    ("off_rules_considered", _is_int, "integer"),
]


def check_bench_scheduler(errors, doc):
    _check_keys(errors, "$", doc, BENCH_ENVELOPE_SPEC + [
        ("schema", lambda v: v == "park-bench-scheduler-v1",
         '"park-bench-scheduler-v1"'),
        ("smoke", lambda v: isinstance(v, bool), "bool"),
        ("bit_identical", lambda v: v is True, "true"),
        # kilorule delta_filtered@1 speedup gate: "skipped" only in smoke
        # mode; a failed gate exits non-zero before writing any JSON.
        ("gate", lambda v: v in ("passed", "skipped"),
         '"passed" or "skipped"'),
        ("cases", lambda v: isinstance(v, list) and v, "non-empty array"),
    ])
    for i, case in enumerate(doc.get("cases") or []):
        where = f"$.cases[{i}]"
        _check_keys(errors, where, case, [
            ("name", lambda v: isinstance(v, str) and v, "non-empty string"),
            ("rules", _is_int, "integer"),
            ("configs", lambda v: isinstance(v, list) and v,
             "non-empty array"),
        ])
        if not isinstance(case, dict):
            continue
        for j, config in enumerate(case.get("configs") or []):
            _check_keys(errors, f"{where}.configs[{j}]", config,
                        SCHEDULER_CONFIG_SPEC)


SERVING_CONFIG_SPEC = [
    ("max_group_size", _is_int, "integer"),
    ("commits", _is_int, "integer"),
    ("wall_ms", _is_num, "number"),
    ("commits_per_sec", _is_num, "number"),
    ("mean_commit_latency_us", _is_num, "number"),
    ("batches", _is_int, "integer"),
    ("mean_batch_size", _is_num, "number"),
    ("max_batch_size", _is_int, "integer"),
    ("journal_records", _is_int, "integer"),
    ("snapshot_reads", _is_int, "integer"),
    ("throughput_vs_unbatched", _is_num, "number"),
]


def check_bench_serving(errors, doc):
    _check_keys(errors, "$", doc, BENCH_ENVELOPE_SPEC + [
        ("schema", lambda v: v == "park-bench-serving-v1",
         '"park-bench-serving-v1"'),
        ("smoke", lambda v: isinstance(v, bool), "bool"),
        # Every configuration's final state equals the sequential oracle.
        ("bit_identical", lambda v: v is True, "true"),
        # Group-commit >= 2x over fsync-per-commit at 8 writers; "skipped"
        # (recorded, not silent) in smoke mode or off-fsync runs. A failed
        # gate exits non-zero before any JSON is written.
        ("gate", lambda v: v in ("passed", "skipped"),
         '"passed" or "skipped"'),
        ("cases", lambda v: isinstance(v, list) and v, "non-empty array"),
    ])
    for i, case in enumerate(doc.get("cases") or []):
        where = f"$.cases[{i}]"
        _check_keys(errors, where, case, [
            ("name", lambda v: isinstance(v, str) and v, "non-empty string"),
            ("writers", _is_int, "integer"),
            ("readers", _is_int, "integer"),
            ("sync_mode", lambda v: v in ("fsync", "fdatasync", "none"),
             "sync mode name"),
            ("configs", lambda v: isinstance(v, list) and v,
             "non-empty array"),
        ])
        if not isinstance(case, dict):
            continue
        for j, config in enumerate(case.get("configs") or []):
            _check_keys(errors, f"{where}.configs[{j}]", config,
                        SERVING_CONFIG_SPEC)


INCREMENTAL_CONFIG_SPEC = [
    ("threads", _is_int, "integer"),
    ("scratch_ms", _is_num, "number"),
    ("incremental_ms", _is_num, "number"),
    ("speedup", _is_num, "number"),
    ("commits", _is_int, "integer"),
    ("maintained_commits", _is_int, "integer"),
    ("fallbacks", _is_int, "integer"),
    ("atoms_rederived", _is_int, "integer"),
    ("atoms_overdeleted", _is_int, "integer"),
    ("cone_rules", _is_int, "integer"),
]


def check_bench_incremental(errors, doc):
    _check_keys(errors, "$", doc, BENCH_ENVELOPE_SPEC + [
        ("schema", lambda v: v == "park-bench-incremental-v1",
         '"park-bench-incremental-v1"'),
        ("smoke", lambda v: isinstance(v, bool), "bool"),
        # Every incremental run's per-commit diffs and final instance
        # equal the from-scratch replay's.
        ("bit_identical", lambda v: v is True, "true"),
        # Every measured config >= 3x over from-scratch; "skipped" only
        # in smoke mode. A failed gate exits non-zero before any JSON is
        # written, so "failed" never appears.
        ("gate", lambda v: v in ("passed", "skipped"),
         '"passed" or "skipped"'),
        ("cases", lambda v: isinstance(v, list) and v, "non-empty array"),
    ])
    for i, case in enumerate(doc.get("cases") or []):
        where = f"$.cases[{i}]"
        _check_keys(errors, where, case, [
            ("name", lambda v: isinstance(v, str) and v, "non-empty string"),
            ("rules", _is_int, "integer"),
            ("configs", lambda v: isinstance(v, list) and v,
             "non-empty array"),
        ])
        if not isinstance(case, dict):
            continue
        for j, config in enumerate(case.get("configs") or []):
            _check_keys(errors, f"{where}.configs[{j}]", config,
                        INCREMENTAL_CONFIG_SPEC)


CHECKERS = {
    "park-stats-v1": check_park_stats,
    "park-bench-parallel-v1": check_bench_parallel,
    "park-bench-planner-v1": check_bench_planner,
    "park-bench-paper-examples-v1": check_bench_paper_examples,
    "park-bench-columnar-v1": check_bench_columnar,
    "park-bench-scheduler-v1": check_bench_scheduler,
    "park-bench-serving-v1": check_bench_serving,
    "park-bench-incremental-v1": check_bench_incremental,
}


def check_file(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"cannot parse: {e}"]
    if not isinstance(doc, dict) or "schema" not in doc:
        return ["document has no top-level \"schema\" tag"]
    checker = CHECKERS.get(doc["schema"])
    if checker is None:
        return [f"unknown schema {doc['schema']!r} "
                f"(known: {', '.join(sorted(CHECKERS))})"]
    errors = []
    checker(errors, doc)
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        errors = check_file(path)
        if errors:
            failed = True
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
        else:
            print(f"{path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
