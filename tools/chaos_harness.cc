// park_chaos: seeded randomized torture driver for the robustness
// surface. Each iteration picks one scenario and one thread count and
// runs a randomized-but-deterministic workload under it:
//
//   control    — fault-free run at threads=1 and threads=4; the two final
//                instances must be bit-identical (the governance and
//                parallelism layers must not perturb ungoverned results).
//   crash      — FaultPlan::kCrash at a random I/O operation index; the
//                directory is then recovered with a clean Env and the
//                recovered instance must be EXACTLY a committed prefix of
//                the scripted history (the in-flight commit may or may
//                not have become durable — both replays are accepted,
//                nothing else is).
//   transient  — seeded random kUnavailable injection under the journal;
//                commits ride the retry/backoff loop. Acked commits must
//                match the fault-free oracle state; a failed commit must
//                leave the instance at its pre-commit state; recovery
//                with a clean Env must reproduce exactly the acked
//                prefix.
//   deadline   — a tiny deadline_ms against a cross-join rule big enough
//                to blow it mid-Γ; the commit must fail with
//                kDeadlineExceeded and leave the instance untouched.
//   cancel     — a small max_derivations budget (the same code path an
//                external CancellationToken fires through); the commit
//                must fail with kResourceExhausted and leave the
//                instance untouched.
//   memory     — a small max_memory_bytes budget; ditto.
//   batch      — concurrent insert-only writers through a Session (group
//                commit) over a crash-injecting Env; recovery with a
//                clean Env must succeed, must equal a sequential replay
//                of the surviving journal records (batching invisible to
//                recovery), and must contain every acked commit.
//   maintenance— commits under MaintenanceMode::kIncremental against a
//                gate-eligible program over a crash-injecting Env, with a
//                sprinkling of gate-violating commits forcing mid-stream
//                fallbacks; recovery (also with maintenance on, so replay
//                itself exercises the incremental path) must be EXACTLY a
//                committed prefix of the maintenance-OFF from-scratch
//                oracle history.
//
// Every fault iteration verifies the applied-exactly-or-untouched
// contract (snapshot equality around each commit) and, for durable
// scenarios, that ActiveDatabase::Open() on the surviving directory
// succeeds afterwards. Any violation is printed and counted; the exit
// code is 0 only for a clean sweep.
//
// Usage: park_chaos [--seed N] [--iterations N] [--verbose]
//
// CI runs a fixed-seed smoke (see tools/CMakeLists.txt); bump
// --iterations locally for a longer soak.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "eca/journal.h"
#include "park/park.h"
#include "util/fault_env.h"

namespace park {
namespace {

constexpr char kRules[] = R"(
  onboard: +emp(X) -> +active(X).
  cleanup: emp(X), !active(X), payroll(X, S) -> -payroll(X, S).
)";

/// The governed scenarios need one Γ step heavy enough to trip a small
/// budget: a cross join gated on `watch`, which only the doomed commit
/// inserts — so every other commit against the same program stays cheap.
constexpr char kHeavyRules[] = R"(
  onboard: +emp(X) -> +active(X).
  blowup: watch, e(X), e(Y), e(Z) -> +t(X, Y, Z).
)";

struct Violation {
  int iteration;
  std::string message;
};

struct Harness {
  uint64_t seed = 1;
  int iterations = 240;
  bool verbose = false;

  std::vector<Violation> violations;
  int runs = 0;

  void Fail(int iteration, std::string message) {
    std::fprintf(stderr, "VIOLATION[it=%d]: %s\n", iteration,
                 message.c_str());
    violations.push_back({iteration, std::move(message)});
  }
};

/// One randomized update against the emp/payroll schema. Deterministic
/// given the RNG state; mixes inserts, deletes and rule triggers.
void RandomUpdate(std::mt19937_64& rng, Transaction& tx) {
  const std::string who = "v" + std::to_string(rng() % 8);
  switch (rng() % 4) {
    case 0:
      tx.Insert("emp", {who});
      break;
    case 1:
      tx.Insert("payroll", {who, "s" + std::to_string(rng() % 4)});
      break;
    case 2:
      tx.Delete("active", {who});  // cleanup may fire
      break;
    default:
      tx.Insert("emp", {who});
      tx.Insert("payroll", {who, "s0"});
      break;
  }
}

ActiveDatabase::OpenParams DurableParams(Env* env, int threads) {
  ActiveDatabase::OpenParams params;
  params.rules = kRules;
  params.env = env;
  params.sync_mode = JournalSyncMode::kFsync;
  params.options.num_threads = threads;
  return params;
}

/// states[k] = instance after the first k commits of the seeded script,
/// from a fault-free in-memory reference run. PARK's determinism makes
/// these the only legal recovery outcomes.
std::vector<std::string> OracleStates(uint64_t script_seed, int commits,
                                      int threads) {
  std::mt19937_64 rng(script_seed);
  ActiveDatabase db;
  Status rules = db.LoadRules(kRules);
  if (!rules.ok()) std::abort();
  ParkOptions options;
  options.num_threads = threads;
  if (!db.Configure(std::move(options)).ok()) std::abort();
  std::vector<std::string> states;
  states.push_back(db.database().ToString());
  for (int i = 0; i < commits; ++i) {
    Transaction tx = db.Begin();
    RandomUpdate(rng, tx);
    if (!std::move(tx).Commit().ok()) std::abort();
    states.push_back(db.database().ToString());
  }
  return states;
}

// --- scenario: fault-free control ----------------------------------------

void RunControl(Harness& h, int iteration, uint64_t script_seed) {
  const int commits = 4;
  const std::string one = OracleStates(script_seed, commits, 1).back();
  const std::string four = OracleStates(script_seed, commits, 4).back();
  if (one != four) {
    h.Fail(iteration,
           "control: threads=1 and threads=4 final instances differ");
  }
}

// --- scenario: crash at a random I/O operation ---------------------------

void RunCrash(Harness& h, int iteration, uint64_t script_seed,
              const std::string& dir, int threads) {
  std::mt19937_64 rng(script_seed);
  const int commits = 3;

  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kCrash;
  plan.fault_at = static_cast<int64_t>(rng() % 48);
  plan.torn_write_percent = static_cast<int>(rng() % 101);
  FaultInjectingEnv fault_env(Env::Default(), plan);

  std::mt19937_64 script(script_seed);
  int acked = 0;
  bool in_flight = false;
  {
    auto db = ActiveDatabase::Open(dir, DurableParams(&fault_env, threads));
    if (db.ok()) {
      for (int i = 0; i < commits; ++i) {
        Transaction tx = db->Begin();
        RandomUpdate(script, tx);
        in_flight = true;
        if (!std::move(tx).Commit().ok()) break;
        in_flight = false;
        ++acked;
      }
    }
  }

  auto recovered = ActiveDatabase::Open(dir, DurableParams(Env::Default(),
                                                           threads));
  if (!recovered.ok()) {
    h.Fail(iteration, "crash: recovery Open() failed: " +
                          recovered.status().ToString());
    return;
  }
  const std::vector<std::string> oracle =
      OracleStates(script_seed, commits, threads);
  const std::string got = recovered->database().ToString();
  bool legal = got == oracle[acked];
  // The record in flight at the crash may have become fully durable even
  // though the ack never reached the caller.
  if (!legal && in_flight) legal = got == oracle[acked + 1];
  if (!legal) {
    h.Fail(iteration,
           "crash: recovered instance is not a committed prefix (acked=" +
               std::to_string(acked) + ", fault_at=" +
               std::to_string(plan.fault_at) + ")");
  }
}

// --- scenario: transient I/O under the retry loop ------------------------

void RunTransient(Harness& h, int iteration, uint64_t script_seed,
                  const std::string& dir, int threads) {
  std::mt19937_64 rng(script_seed);
  const int commits = 4;
  const std::vector<std::string> oracle =
      OracleStates(script_seed, commits, threads);

  FaultInjectingEnv fault_env(Env::Default());
  int acked = 0;
  bool failed = false;
  {
    auto db = ActiveDatabase::Open(dir, DurableParams(&fault_env, threads));
    if (!db.ok()) {
      h.Fail(iteration,
             "transient: fault-free Open() failed: " + db.status().ToString());
      return;
    }
    // Faults start only after Open so they land on the commit pipeline,
    // where the retry loop lives. Backoff stays 0 to keep the soak fast.
    TransientFaults faults;
    faults.random_seed = static_cast<uint32_t>(rng());
    faults.random_percent = 25;
    faults.random_max_failures = static_cast<int>(rng() % 8);
    fault_env.set_transient(faults);

    std::mt19937_64 script(script_seed);
    for (int i = 0; i < commits; ++i) {
      const std::string before = db->database().ToString();
      Transaction tx = db->Begin();
      RandomUpdate(script, tx);
      auto report = std::move(tx).Commit();
      if (report.ok()) {
        ++acked;
        if (db->database().ToString() != oracle[acked]) {
          h.Fail(iteration, "transient: acked commit " + std::to_string(i) +
                                " diverges from the fault-free oracle");
          return;
        }
        continue;
      }
      // Retries exhausted: the commit must have rolled back cleanly.
      failed = true;
      if (db->database().ToString() != before) {
        h.Fail(iteration, "transient: failed commit left the instance "
                          "changed (applied-exactly-or-untouched broken)");
        return;
      }
      if (!report.failure().has_value()) {
        h.Fail(iteration,
               "transient: failed commit carried no CommitFailure");
        return;
      }
      break;  // stop the workload at the first failure, like the crash case
    }
  }

  auto recovered = ActiveDatabase::Open(dir, DurableParams(Env::Default(),
                                                           threads));
  if (!recovered.ok()) {
    h.Fail(iteration, "transient: recovery Open() failed: " +
                          recovered.status().ToString());
    return;
  }
  const std::string got = recovered->database().ToString();
  bool legal = got == oracle[acked];
  // When the failed append's heal (truncate to the durable prefix) ALSO
  // failed, the journal disables itself with the failed record possibly
  // already durable — the same maybe-durable ambiguity as a crash, so
  // exactly one extra commit is accepted, never fewer and never more.
  if (!legal && failed) legal = got == oracle[acked + 1];
  if (!legal) {
    h.Fail(iteration, "transient: recovered instance is not the acked "
                      "prefix (acked=" + std::to_string(acked) + ")");
  }
}

// --- scenarios: governed commits (deadline / cancel / memory) ------------

enum class Budget { kDeadline, kWork, kMemory };

void RunGoverned(Harness& h, int iteration, uint64_t script_seed,
                 Budget budget, int threads) {
  std::mt19937_64 rng(script_seed);
  ActiveDatabase db;
  if (!db.LoadRules(kHeavyRules).ok()) std::abort();
  std::string facts;
  const int n = 40 + static_cast<int>(rng() % 21);  // 64k..216k groundings
  for (int i = 0; i < n; ++i) facts += "e(v" + std::to_string(i) + "). ";
  if (!db.LoadFacts(facts).ok()) std::abort();

  // A couple of benign commits first, so the doomed one runs against a
  // non-trivial instance.
  std::mt19937_64 script(script_seed);
  for (int i = 0; i < 2; ++i) {
    Transaction tx = db.Begin();
    RandomUpdate(script, tx);
    if (!std::move(tx).Commit().ok()) {
      h.Fail(iteration, "governed: benign prelude commit failed");
      return;
    }
  }
  const std::string before = db.database().ToString();

  ParkOptions options;
  options.num_threads = threads;
  StatusCode want = StatusCode::kResourceExhausted;
  switch (budget) {
    case Budget::kDeadline:
      options.deadline_ms = 1 + static_cast<int64_t>(rng() % 5);
      want = StatusCode::kDeadlineExceeded;
      break;
    case Budget::kWork:
      options.max_derivations = 1 + rng() % 200;
      break;
    case Budget::kMemory:
      options.max_memory_bytes = 1024 + rng() % (16 * 1024);
      break;
  }
  if (!db.Configure(std::move(options)).ok()) {
    h.Fail(iteration, "governed: Configure rejected a valid bundle");
    return;
  }

  auto report = std::move(db.Begin().Insert("watch", {})).Commit();
  if (report.ok()) {
    // A generous random budget may legitimately let the join finish; the
    // result must then match the ungoverned oracle below.
    ActiveDatabase oracle;
    if (!oracle.LoadRules(kHeavyRules).ok()) std::abort();
    if (!oracle.LoadFacts(facts).ok()) std::abort();
    std::mt19937_64 replay(script_seed);
    for (int i = 0; i < 2; ++i) {
      Transaction tx = oracle.Begin();
      RandomUpdate(replay, tx);
      if (!std::move(tx).Commit().ok()) std::abort();
    }
    if (!std::move(oracle.Begin().Insert("watch", {})).Commit().ok() ||
        db.database().ToString() != oracle.database().ToString()) {
      h.Fail(iteration, "governed: budget-passing run diverges from the "
                        "ungoverned oracle");
    }
    return;
  }

  if (report.status().code() != want) {
    h.Fail(iteration, "governed: expected status " +
                          std::to_string(static_cast<int>(want)) + ", got " +
                          report.status().ToString());
    return;
  }
  if (db.database().ToString() != before) {
    h.Fail(iteration, "governed: failed commit left the instance changed");
    return;
  }
  if (!report.failure().has_value() ||
      report.failure()->stage != CommitFailure::Stage::kEvaluate) {
    h.Fail(iteration, "governed: CommitFailure missing or wrong stage");
    return;
  }
  // The database must stay usable: lift the budget and commit normally.
  if (!db.Configure(ParkOptions{}).ok()) {
    h.Fail(iteration, "governed: re-Configure after failure rejected");
    return;
  }
  auto retry = std::move(db.Begin().Insert("q", {"ok"})).Commit();
  if (!retry.ok()) {
    h.Fail(iteration, "governed: database unusable after governed failure: " +
                          retry.status().ToString());
    return;
  }
  if (retry.failure().has_value()) {
    h.Fail(iteration, "governed: CommitFailure riding on a success");
  }
}

// --- scenario: crash mid-group-commit through the Session front-end ------

// Concurrent writers push insert-only commits through a Session (so group
// commit folds them into batch journal records) over a crash-injecting
// Env. After the crash, recovery with a clean Env must (a) succeed, (b)
// land bit-identically on a sequential replay of the surviving journal
// records — batching must be invisible to recovery — and (c) contain
// every commit that was acked before the crash (sync_mode is kFsync, so
// an ack promises durability). The workload is insert-only with
// per-writer-distinct atoms, so (c) is well-defined whatever order the
// batches formed in.
void RunBatch(Harness& h, int iteration, uint64_t script_seed,
              const std::string& dir) {
  std::mt19937_64 rng(script_seed);
  constexpr int kWriters = 3;
  constexpr int kCommitsPerWriter = 4;

  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kCrash;
  plan.fault_at = static_cast<int64_t>(rng() % 96);
  plan.torn_write_percent = static_cast<int>(rng() % 101);
  FaultInjectingEnv fault_env(Env::Default(), plan);
  const size_t max_group_size = 1 + rng() % 8;

  std::vector<std::vector<std::string>> acked(kWriters);
  {
    Session::Params params;
    params.rules = kRules;
    params.env = &fault_env;
    params.sync_mode = JournalSyncMode::kFsync;
    params.max_group_size = max_group_size;
    auto session = Session::Open(dir, std::move(params));
    if (session.ok()) {
      std::vector<std::thread> writers;
      for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
          for (int i = 0; i < kCommitsPerWriter; ++i) {
            const std::string who =
                "b" + std::to_string(w) + "_" + std::to_string(i);
            Transaction tx = (*session)->Begin();
            tx.Insert("emp", {who});
            if (std::move(tx).Commit().ok()) acked[w].push_back(who);
          }
        });
      }
      for (std::thread& t : writers) t.join();
    }
    // else: the crash landed inside Open() itself; recovery below must
    // still cope with whatever partial directory it left behind.
  }

  auto recovered = ActiveDatabase::Open(dir, DurableParams(Env::Default(),
                                                           /*threads=*/1));
  if (!recovered.ok()) {
    h.Fail(iteration, "batch: recovery Open() failed: " +
                          recovered.status().ToString());
    return;
  }
  const std::string got = recovered->database().ToString();

  // (b) Bit-identical to a sequential replay of the surviving journal: a
  // batch record replays as the one folded transaction it was.
  auto symbols = MakeSymbolTable();
  ActiveDatabase oracle(symbols);
  if (!oracle.LoadRules(kRules).ok()) std::abort();
  const std::string journal_path = dir + "/journal.log";
  if (std::filesystem::exists(journal_path)) {
    auto records = TransactionJournal::ReadRecords(journal_path, symbols);
    if (!records.ok()) {
      h.Fail(iteration, "batch: surviving journal unreadable: " +
                            records.status().ToString());
      return;
    }
    for (const JournalRecord& record : *records) {
      Transaction tx = oracle.Begin();
      for (const Update& u : record.updates.updates()) {
        if (u.action == ActionKind::kInsert) {
          tx.Insert(u.atom);
        } else {
          tx.Delete(u.atom);
        }
      }
      if (!std::move(tx).Commit().ok()) {
        h.Fail(iteration, "batch: oracle replay of a journal record failed");
        return;
      }
    }
  }
  if (got != oracle.database().ToString()) {
    h.Fail(iteration,
           "batch: recovered instance diverges from sequential journal "
           "replay (max_group_size=" + std::to_string(max_group_size) +
               ", fault_at=" + std::to_string(plan.fault_at) + ")");
    return;
  }

  // (c) Acked implies durable: every acked insert survived the crash.
  for (int w = 0; w < kWriters; ++w) {
    for (const std::string& who : acked[w]) {
      if (got.find("emp(" + who + ")") == std::string::npos) {
        h.Fail(iteration, "batch: acked commit emp(" + who +
                              ") missing after recovery (fault_at=" +
                              std::to_string(plan.fault_at) + ")");
        return;
      }
    }
  }
}

// --- scenario: crash under incremental maintenance ------------------------

/// Gate-eligible program (insert-only heads, no event/negation feedback
/// onto a head predicate): commits inserting/deleting `emp` ride the
/// incremental path, while deletes of `active` (a head predicate) force
/// a transparent full-recompute fallback mid-stream.
constexpr char kMaintRules[] = R"(
  onboard: +emp(X) -> +active(X).
  promote: active(X) -> +member(X).
)";

void RandomMaintUpdate(std::mt19937_64& rng, Transaction& tx) {
  const std::string who = "v" + std::to_string(rng() % 8);
  switch (rng() % 5) {
    case 0:
    case 1:
      tx.Insert("emp", {who});
      break;
    case 2:
      tx.Delete("emp", {who});  // eligible: emp is not a head predicate
      break;
    case 3:
      tx.Delete("active", {who});  // head-predicate delete -> fallback
      break;
    default:
      tx.Insert("emp", {who});
      tx.Insert("extra", {who});
      break;
  }
}

/// Maintenance-OFF oracle: states[k] = instance after the first k commits
/// of the seeded script, every one recomputed from scratch.
std::vector<std::string> MaintOracleStates(uint64_t script_seed, int commits,
                                           int threads) {
  std::mt19937_64 rng(script_seed);
  ActiveDatabase db;
  if (!db.LoadRules(kMaintRules).ok()) std::abort();
  ParkOptions options;
  options.num_threads = threads;
  if (!db.Configure(std::move(options)).ok()) std::abort();
  std::vector<std::string> states;
  states.push_back(db.database().ToString());
  for (int i = 0; i < commits; ++i) {
    Transaction tx = db.Begin();
    RandomMaintUpdate(rng, tx);
    if (!std::move(tx).Commit().ok()) std::abort();
    states.push_back(db.database().ToString());
  }
  return states;
}

void RunMaintenance(Harness& h, int iteration, uint64_t script_seed,
                    const std::string& dir, int threads) {
  std::mt19937_64 rng(script_seed);
  const int commits = 4;

  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kCrash;
  plan.fault_at = static_cast<int64_t>(rng() % 64);
  plan.torn_write_percent = static_cast<int>(rng() % 101);
  FaultInjectingEnv fault_env(Env::Default(), plan);

  auto params_for = [&](Env* env) {
    ActiveDatabase::OpenParams params;
    params.rules = kMaintRules;
    params.env = env;
    params.sync_mode = JournalSyncMode::kFsync;
    params.options.num_threads = threads;
    params.options.maintenance_mode = MaintenanceMode::kIncremental;
    return params;
  };

  std::mt19937_64 script(script_seed);
  int acked = 0;
  bool in_flight = false;
  {
    auto db = ActiveDatabase::Open(dir, params_for(&fault_env));
    if (db.ok()) {
      for (int i = 0; i < commits; ++i) {
        Transaction tx = db->Begin();
        RandomMaintUpdate(script, tx);
        in_flight = true;
        if (!std::move(tx).Commit().ok()) break;
        in_flight = false;
        ++acked;
      }
    }
  }

  // Recovery ALSO runs with maintenance on: journal replay goes through
  // the same incremental commit path the live run used.
  auto recovered = ActiveDatabase::Open(dir, params_for(Env::Default()));
  if (!recovered.ok()) {
    h.Fail(iteration, "maintenance: recovery Open() failed: " +
                          recovered.status().ToString());
    return;
  }
  const std::vector<std::string> oracle =
      MaintOracleStates(script_seed, commits, threads);
  const std::string got = recovered->database().ToString();
  bool legal = got == oracle[acked];
  if (!legal && in_flight) legal = got == oracle[acked + 1];
  if (!legal) {
    h.Fail(iteration,
           "maintenance: recovered instance is not a committed prefix of "
           "the from-scratch oracle (acked=" + std::to_string(acked) +
               ", fault_at=" + std::to_string(plan.fault_at) + ")");
  }
}

// --- driver ---------------------------------------------------------------

int Main(int argc, char** argv) {
  Harness h;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      h.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      h.iterations = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      h.verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: park_chaos [--seed N] [--iterations N] "
                   "[--verbose]\n");
      return 2;
    }
  }

  const std::string base =
      std::filesystem::temp_directory_path() /
      ("park_chaos_" + std::to_string(h.seed));
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base);

  static const char* kNames[] = {"control",  "crash",  "transient",
                                 "deadline", "cancel", "memory", "batch",
                                 "maintenance"};
  for (int it = 0; it < h.iterations; ++it) {
    const int scenario = it % 8;
    const int threads = (it / 8) % 2 == 0 ? 1 : 4;
    const uint64_t script_seed =
        h.seed * 1000003ull + static_cast<uint64_t>(it);
    if (h.verbose) {
      std::fprintf(stderr, "it=%d scenario=%s threads=%d\n", it,
                   kNames[scenario], threads);
    }
    const std::string dir = base + "/it" + std::to_string(it);
    std::filesystem::create_directories(dir);
    switch (scenario) {
      case 0:
        RunControl(h, it, script_seed);
        break;
      case 1:
        RunCrash(h, it, script_seed, dir, threads);
        break;
      case 2:
        RunTransient(h, it, script_seed, dir, threads);
        break;
      case 3:
        RunGoverned(h, it, script_seed, Budget::kDeadline, threads);
        break;
      case 4:
        RunGoverned(h, it, script_seed, Budget::kWork, threads);
        break;
      case 5:
        RunGoverned(h, it, script_seed, Budget::kMemory, threads);
        break;
      case 6:
        RunBatch(h, it, script_seed, dir);
        break;
      case 7:
        RunMaintenance(h, it, script_seed, dir, threads);
        break;
    }
    ++h.runs;
    std::filesystem::remove_all(dir);
  }
  std::filesystem::remove_all(base);

  std::printf("park_chaos: %d runs (seed=%llu), %zu violation(s)\n", h.runs,
              static_cast<unsigned long long>(h.seed),
              h.violations.size());
  return h.violations.empty() ? 0 : 1;
}

}  // namespace
}  // namespace park

int main(int argc, char** argv) { return park::Main(argc, argv); }
