// D — durability cost: commit throughput per JournalSyncMode (none /
// flush / fsync-per-commit), the recovery time of a journal-heavy
// directory, and how checkpointing bounds it. Quantifies the group-commit
// cost the sync-mode knob trades against crash safety (docs/DURABILITY.md).

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "park/park.h"

namespace park {
namespace {

constexpr char kRules[] = R"(
  onboard: +emp(X) -> +active(X).
  cleanup: emp(X), !active(X), payroll(X, S) -> -payroll(X, S).
)";

std::string FreshDir(const std::string& name) {
  std::string dir =
      std::filesystem::temp_directory_path() / ("park_bench_" + name);
  std::filesystem::remove_all(dir);
  return dir;
}

ActiveDatabase::OpenParams Params(JournalSyncMode mode) {
  ActiveDatabase::OpenParams params;
  params.rules = kRules;
  params.sync_mode = mode;
  return params;
}

/// Commits per second under each sync mode; arg 0 selects the mode.
void BM_CommitPerSyncMode(benchmark::State& state) {
  const auto mode = static_cast<JournalSyncMode>(state.range(0));
  const std::string dir = FreshDir("sync_mode");
  int i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    auto db = ActiveDatabase::Open(dir, Params(mode));
    if (!db.ok()) state.SkipWithError(db.status().ToString().c_str());
    state.ResumeTiming();
    for (int tx_index = 0; tx_index < 32; ++tx_index) {
      Transaction tx = db->Begin();
      tx.Insert("emp", {"e" + std::to_string(i++)});
      auto report = std::move(tx).Commit();
      if (!report.ok()) {
        state.SkipWithError(report.status().ToString().c_str());
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * 32);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_CommitPerSyncMode)
    ->Arg(static_cast<int>(JournalSyncMode::kNone))
    ->Arg(static_cast<int>(JournalSyncMode::kFlush))
    ->Arg(static_cast<int>(JournalSyncMode::kFsync))
    ->Unit(benchmark::kMillisecond);

/// Recovery (Open with replay) as the un-checkpointed journal grows.
void BM_RecoveryAtJournalLength(benchmark::State& state) {
  const int commits = static_cast<int>(state.range(0));
  const std::string dir = FreshDir("recovery");
  {
    auto db = ActiveDatabase::Open(dir, Params(JournalSyncMode::kNone));
    if (!db.ok()) state.SkipWithError(db.status().ToString().c_str());
    for (int i = 0; i < commits; ++i) {
      Transaction tx = db->Begin();
      tx.Insert("emp", {"e" + std::to_string(i)});
      (void)std::move(tx).Commit();
    }
  }
  for (auto _ : state) {
    auto db = ActiveDatabase::Open(dir, Params(JournalSyncMode::kNone));
    if (!db.ok()) state.SkipWithError(db.status().ToString().c_str());
    benchmark::DoNotOptimize(db->database());
  }
  state.counters["journal_records"] = static_cast<double>(commits);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_RecoveryAtJournalLength)->RangeMultiplier(4)->Range(16, 1024)
    ->Unit(benchmark::kMillisecond);

/// Same history length, but checkpointed: recovery loads the snapshot
/// instead of replaying — the flat line that justifies Checkpoint().
void BM_RecoveryAfterCheckpoint(benchmark::State& state) {
  const int commits = static_cast<int>(state.range(0));
  const std::string dir = FreshDir("checkpointed");
  {
    auto db = ActiveDatabase::Open(dir, Params(JournalSyncMode::kNone));
    if (!db.ok()) state.SkipWithError(db.status().ToString().c_str());
    for (int i = 0; i < commits; ++i) {
      Transaction tx = db->Begin();
      tx.Insert("emp", {"e" + std::to_string(i)});
      (void)std::move(tx).Commit();
    }
    if (!db->Checkpoint().ok()) state.SkipWithError("checkpoint failed");
  }
  for (auto _ : state) {
    auto db = ActiveDatabase::Open(dir, Params(JournalSyncMode::kNone));
    if (!db.ok()) state.SkipWithError(db.status().ToString().c_str());
    benchmark::DoNotOptimize(db->database());
  }
  state.counters["snapshot_atoms"] = static_cast<double>(2 * commits);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_RecoveryAfterCheckpoint)->RangeMultiplier(4)->Range(16, 1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace park

BENCHMARK_MAIN();
