// C9 — ECA transaction throughput: commit latency on the payroll
// ActiveDatabase as (a) the stored database grows at fixed transaction
// size, and (b) the transaction grows at fixed database size. Event-rule
// cascades (deactivation -> payroll deletion -> audit) run inside every
// commit.

#include <benchmark/benchmark.h>

#include "park/park.h"
#include "workload/payroll_gen.h"

namespace park {
namespace {

void BM_CommitAtDatabaseSize(benchmark::State& state) {
  PayrollParams params;
  params.num_employees = static_cast<int>(state.range(0));
  params.inactive_fraction = 0.0;
  params.num_deactivations = 8;
  params.seed = 61;
  Workload w = MakePayrollWorkload(params);
  for (auto _ : state) {
    // Evaluate the commit against the immutable stored instance; the
    // result database is produced fresh each time (copy-on-commit).
    auto result = Park(w.database, w.program, w.updates.updates());
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result->database);
  }
  state.counters["db_atoms"] = static_cast<double>(w.database.size());
  state.counters["tx_updates"] = static_cast<double>(w.updates.size());
}
BENCHMARK(BM_CommitAtDatabaseSize)->RangeMultiplier(4)->Range(64, 16384)
    ->Unit(benchmark::kMillisecond);

void BM_CommitAtTransactionSize(benchmark::State& state) {
  PayrollParams params;
  params.num_employees = 2048;
  params.inactive_fraction = 0.0;
  params.num_deactivations = static_cast<int>(state.range(0));
  params.seed = 67;
  Workload w = MakePayrollWorkload(params);
  for (auto _ : state) {
    auto result = Park(w.database, w.program, w.updates.updates());
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result->database);
  }
  state.counters["tx_updates"] = static_cast<double>(w.updates.size());
}
BENCHMARK(BM_CommitAtTransactionSize)->RangeMultiplier(4)->Range(1, 256)
    ->Unit(benchmark::kMillisecond);

void BM_ActiveDatabaseEndToEnd(benchmark::State& state) {
  // Full facade path: Begin/Insert/Commit with the onboarding trigger.
  for (auto _ : state) {
    state.PauseTiming();
    ActiveDatabase db;
    (void)db.LoadRules(R"(
      onboard: +emp(X) -> +active(X).
      cleanup: emp(X), !active(X), payroll(X, S) -> -payroll(X, S).
    )");
    state.ResumeTiming();
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
      Transaction tx = db.Begin();
      tx.Insert("emp", {"e" + std::to_string(i)});
      tx.Insert("payroll", {"e" + std::to_string(i), "pay"});
      auto report = std::move(tx).Commit();
      if (!report.ok()) {
        state.SkipWithError(report.status().ToString().c_str());
      }
    }
    benchmark::DoNotOptimize(db.database());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ActiveDatabaseEndToEnd)->Arg(16)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace park

BENCHMARK_MAIN();
