// P1 — parallel Γ scaling: wall-clock for the same fixpoint computation
// at 1/2/4/8 evaluation threads, with an in-bench bit-identity check
// (every multi-threaded run must reproduce the single-threaded database
// and step counts exactly, or the bench aborts). Emits BENCH_parallel.json
// with per-config times, speedups, and pool stats, including the
// intra-rule slice counters (sliced_units / slices) that show how much of
// the speedup came from splitting single rules rather than running rules
// side by side. The skew_single_rule case is the slicing showcase: one
// join rule dominates the section, so without slicing extra threads
// cannot help at all.
//
//   bench_parallel [--smoke] [output.json]   (default: BENCH_parallel.json)
//
// --smoke shrinks the workloads and the thread sweep so CI can exercise
// the full path (including the JSON schema) in a couple of seconds; the
// timings of a smoke run are meaningless and the JSON says so.
//
// Speedups only materialize on multi-core hosts; hardware_concurrency is
// recorded in the JSON so a 1-core container's flat curve is explainable.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "park/park.h"
#include "util/string_util.h"
#include "workload/graph_gen.h"
#include "workload/payroll_gen.h"

namespace park {
namespace {

struct BenchCase {
  std::string name;
  Workload workload;
};

struct ConfigResult {
  int threads = 1;
  double best_ms = 0;
  double speedup = 1.0;
  size_t gamma_steps = 0;
  size_t parallel_sections = 0;
  size_t parallel_tasks = 0;
  size_t parallel_sliced_units = 0;
  size_t parallel_slices = 0;
};

/// Intra-rule skew: one join rule owns essentially all the work while two
/// satellite rules stay trivial. Per-rule task generation alone would
/// serialize the section on the big rule; only candidate slicing lets
/// extra threads bite.
Workload MakeSkewWorkload(int num_nodes, int num_edges, uint64_t seed) {
  Workload w(MakeSymbolTable());
  w.program = ParseProgram(
                  "big: edge(X, Y), edge(Y, Z) -> +hop(X, Z).\n"
                  "t1: seed(X) -> +seen(X).\n"
                  "t2: seen(X), hop(X, X) -> +selfloop(X).\n",
                  w.symbols)
                  .value();
  uint64_t state = seed * 2654435761u + 1;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < num_edges; ++i) {
    int64_t a = static_cast<int64_t>(next() % num_nodes);
    int64_t b = static_cast<int64_t>(next() % num_nodes);
    w.database.Insert(IntAtom2(w.symbols, "edge", a, b));
  }
  for (int64_t i = 0; i < 4; ++i) {
    w.database.Insert(IntAtom(w.symbols, "seed", i));
  }
  w.description = StrFormat("skew join, %d nodes / %d edges", num_nodes,
                            num_edges);
  return w;
}

ParkResult RunOnce(const Workload& w, int threads, double* elapsed_ms) {
  ParkOptions options;
  options.num_threads = threads;
  options.gamma_mode = GammaMode::kSemiNaive;
  auto start = std::chrono::steady_clock::now();
  auto result = Park(w.program, w.database, options);
  auto end = std::chrono::steady_clock::now();
  PARK_CHECK(result.ok()) << result.status().ToString();
  *elapsed_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  return std::move(*result);
}

std::vector<ConfigResult> RunCase(const BenchCase& bench,
                                  const std::vector<int>& thread_sweep,
                                  int repetitions) {
  std::vector<ConfigResult> configs;
  std::string reference_db;
  size_t reference_steps = 0;
  for (int threads : thread_sweep) {
    ConfigResult config;
    config.threads = threads;
    double best = -1;
    for (int rep = 0; rep < repetitions; ++rep) {
      double ms = 0;
      ParkResult result = RunOnce(bench.workload, threads, &ms);
      if (best < 0 || ms < best) best = ms;
      std::string db = result.database.ToString();
      if (threads == 1 && rep == 0) {
        reference_db = db;
        reference_steps = result.stats.gamma_steps;
      }
      // The whole point: parallelism must be bit-identical, every run.
      PARK_CHECK(db == reference_db)
          << bench.name << ": " << threads
          << "-thread database differs from the sequential result";
      PARK_CHECK(result.stats.gamma_steps == reference_steps)
          << bench.name << ": " << threads
          << "-thread run took a different number of steps";
      config.gamma_steps = result.stats.gamma_steps;
      config.parallel_sections = result.stats.parallel_sections;
      config.parallel_tasks = result.stats.parallel_tasks;
      config.parallel_sliced_units = result.stats.parallel_sliced_units;
      config.parallel_slices = result.stats.parallel_slices;
    }
    config.best_ms = best;
    config.speedup = configs.empty() ? 1.0 : configs[0].best_ms / best;
    configs.push_back(config);
    std::printf(
        "  %-28s threads=%d  %8.2f ms  speedup %.2fx  "
        "(%zu unit(s) sliced into %zu)\n",
        bench.name.c_str(), threads, best, config.speedup,
        config.parallel_sliced_units, config.parallel_slices);
  }
  return configs;
}

std::string ToJson(
    const std::vector<std::pair<std::string, std::vector<ConfigResult>>>&
        results,
    bool smoke, const char* gate) {
  JsonWriter w = bench::BeginBenchJson("park-bench-parallel-v1");
  w.Key("smoke").Bool(smoke);
  w.Key("bit_identical").Bool(true);
  // payroll@4 >= 0.95x regression gate: "passed", or "skipped" when the
  // host has < 4 hardware threads / the sweep has no 4-thread config
  // (smoke mode). Recorded explicitly so a skipped gate can never read
  // as a clean pass — run_benches.sh surfaces it.
  w.Key("gate").String(gate);
  w.Key("cases").BeginArray();
  for (const auto& [name, configs] : results) {
    w.BeginObject();
    w.Key("name").String(name);
    w.Key("configs").BeginArray();
    for (const ConfigResult& c : configs) {
      w.BeginObject();
      w.Key("threads").Int(c.threads);
      w.Key("best_ms").Double(c.best_ms);
      w.Key("speedup").Double(c.speedup);
      w.Key("gamma_steps").UInt(c.gamma_steps);
      w.Key("parallel_sections").UInt(c.parallel_sections);
      w.Key("parallel_tasks").UInt(c.parallel_tasks);
      w.Key("parallel_sliced_units").UInt(c.parallel_sliced_units);
      w.Key("parallel_slices").UInt(c.parallel_slices);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).str();
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_parallel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  // Smoke mode exists for CI: same code path and JSON schema, workloads
  // an order of magnitude smaller, and a thread sweep short enough for a
  // shared two-core runner.
  const int closure_edges = smoke ? 128 : 1024;
  const int closure_nodes = smoke ? 64 : 256;
  const int payroll_employees = smoke ? 1024 : 16384;
  const int path_nodes = smoke ? 64 : 512;
  const int skew_edges = smoke ? 1024 : 8192;
  const std::vector<int> thread_sweep =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  const int repetitions = smoke ? 1 : 3;

  std::vector<BenchCase> cases;
  {
    BenchCase c{"closure_random_1024",
                MakeTransitiveClosureWorkload(GraphShape::kRandom,
                                              closure_nodes, closure_edges,
                                              /*seed=*/17)};
    cases.push_back(std::move(c));
  }
  {
    PayrollParams params;
    params.num_employees = payroll_employees;
    params.inactive_fraction = 0.1;
    params.seed = 23;
    BenchCase c{"payroll_16384", MakePayrollWorkload(params)};
    cases.push_back(std::move(c));
  }
  {
    BenchCase c{"closure_path_512",
                MakeTransitiveClosureWorkload(GraphShape::kPath, path_nodes,
                                              path_nodes - 1,
                                              /*seed=*/1)};
    cases.push_back(std::move(c));
  }
  {
    BenchCase c{"skew_single_rule",
                MakeSkewWorkload(/*num_nodes=*/512, skew_edges,
                                 /*seed=*/41)};
    cases.push_back(std::move(c));
  }

  std::printf("bench_parallel: %u hardware thread(s)%s\n",
              std::thread::hardware_concurrency(),
              smoke ? " [smoke mode: timings meaningless]" : "");
  std::vector<std::pair<std::string, std::vector<ConfigResult>>> results;
  for (const BenchCase& bench : cases) {
    results.emplace_back(bench.name,
                         RunCase(bench, thread_sweep, repetitions));
  }

  // Regression gate for the tiny-unit scheduling fix: payroll's many
  // per-employee rule units each carry almost no work, so parallelism
  // must at worst break even (the work-estimate gate keeps tiny units
  // from paying counting and task-dispatch overhead). Only meaningful
  // where 4 threads actually exist; when they don't (or the smoke sweep
  // never reaches 4 threads) the JSON records the skip explicitly
  // instead of silently looking like a pass.
  const char* gate = "skipped";
  if (std::thread::hardware_concurrency() >= 4) {
    for (const auto& [name, configs] : results) {
      if (name != "payroll_16384") continue;
      for (const ConfigResult& c : configs) {
        if (c.threads != 4) continue;
        if (c.speedup < 0.95) {
          std::fprintf(stderr,
                       "REGRESSION: payroll_16384 at 4 threads runs at "
                       "%.2fx the sequential speed (want >= 0.95x)\n",
                       c.speedup);
          return 1;
        }
        gate = "passed";
      }
    }
  }
  if (std::strcmp(gate, "skipped") == 0) {
    std::fprintf(stderr,
                 "notice: payroll@4 regression gate skipped (%u hardware "
                 "thread(s), sweep max %d)\n",
                 std::thread::hardware_concurrency(),
                 thread_sweep.back());
  }

  if (!bench::WriteBenchJson(out_path, ToJson(results, smoke, gate))) {
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace park

int main(int argc, char** argv) { return park::Main(argc, argv); }
