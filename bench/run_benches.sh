#!/usr/bin/env bash
# Runs every benchmark with machine-readable JSON output so BENCH_*.json
# trajectories can be tracked across commits.
#
#   bench/run_benches.sh [build-dir] [output-dir]
#
# Defaults: build-dir = ./build, output-dir = current directory. Each
# google-benchmark binary writes BENCH_<name>.json via --benchmark_out;
# bench_parallel, bench_planner and bench_paper_examples manage their own
# output formats.
#
# Every bench is attempted even if an earlier one fails; a failing bench's
# partial JSON is removed (a truncated BENCH_*.json must never pass for a
# real data point) and the script exits non-zero with a summary of the
# failures.
set -uo pipefail

build_dir="${1:-build}"
out_dir="${2:-.}"
bench_dir="${build_dir}/bench"

if [[ ! -d "${bench_dir}" ]]; then
  echo "error: ${bench_dir} not found (build first: cmake -B ${build_dir} && cmake --build ${build_dir})" >&2
  exit 1
fi
mkdir -p "${out_dir}"

# The parallel sweeps bench up to this many threads (bench_parallel's
# thread ladder and bench_columnar's oracle sweep). On a smaller box the
# upper configs timeshare one core, so their "speedups" measure scheduler
# fairness, not the engine — say so up front rather than letting a flat
# curve in BENCH_parallel.json masquerade as a regression. The JSON
# envelope (bench_json.h) records hardware_concurrency/cpu_model/
# build_type for the same reason.
max_bench_threads=8
hw_threads="$(nproc 2>/dev/null || echo 1)"
if (( hw_threads < max_bench_threads )); then
  echo "warning: benches sweep up to ${max_bench_threads} threads but this" \
       "host has ${hw_threads} hardware thread(s); thread counts above" \
       "${hw_threads} timeshare cores and their timings are not meaningful" >&2
fi

failed=()

# run_bench <name> <json-path> <argv...>
run_bench() {
  local name="$1" json="$2"
  shift 2
  echo "== ${name}"
  if ! "$@"; then
    echo "FAIL ${name} (exit $?)" >&2
    rm -f "${json}"
    failed+=("${name}")
  fi
}

gbenches=(
  bench_scaling_db
  bench_scaling_rules
  bench_determinism
  bench_vs_baselines
  bench_policies
  bench_conflict_density
  bench_recursion
  bench_eca
  bench_block_granularity
  bench_gamma_mode
  bench_substrate
  bench_durability
)

for name in "${gbenches[@]}"; do
  bin="${bench_dir}/${name}"
  if [[ ! -x "${bin}" ]]; then
    echo "skip ${name}: not built" >&2
    continue
  fi
  json="${out_dir}/BENCH_${name#bench_}.json"
  run_bench "${name}" "${json}" \
    "${bin}" --benchmark_out="${json}" --benchmark_out_format=json
done

# bench_parallel covers inter-rule scaling AND the skew_single_rule case,
# whose speedup comes entirely from intra-rule candidate slicing; its JSON
# records hardware_concurrency plus per-config parallel_sliced_units /
# parallel_slices so a flat curve on a small host is explainable. It
# shares the park-bench-*-v1 envelope (bench/bench_json.h) with
# bench_paper_examples and bench_planner; all are validated by
# tools/check_stats_schema.py.
if [[ -x "${bench_dir}/bench_parallel" ]]; then
  run_bench bench_parallel "${out_dir}/BENCH_parallel.json" \
    "${bench_dir}/bench_parallel" "${out_dir}/BENCH_parallel.json"
  # The payroll@4 regression gate only runs with >= 4 hardware threads;
  # the JSON records the skip and a clean exit must not hide it.
  if grep -q '"gate": "skipped"' "${out_dir}/BENCH_parallel.json" 2>/dev/null; then
    echo "notice: bench_parallel payroll@4 regression gate was SKIPPED" \
         "(host has ${hw_threads} hardware thread(s)); BENCH_parallel.json" \
         "records gate=skipped — this is not a pass" >&2
  fi
fi

# Cost-based planner vs the static heuristic (skewed and control cases).
if [[ -x "${bench_dir}/bench_planner" ]]; then
  run_bench bench_planner "${out_dir}/BENCH_planner.json" \
    "${bench_dir}/bench_planner" "${out_dir}/BENCH_planner.json"
fi

# Paper-fidelity record (E1-E9) in the same JSON envelope.
if [[ -x "${bench_dir}/bench_paper_examples" ]]; then
  run_bench bench_paper_examples "${out_dir}/BENCH_paper_examples.json" \
    "${bench_dir}/bench_paper_examples" "${out_dir}/BENCH_paper_examples.json"
fi

# Tuple-at-a-time vs batch-at-a-time execution over columnar segments,
# with an in-run set-identity check between the two executors.
if [[ -x "${bench_dir}/bench_columnar" ]]; then
  run_bench bench_columnar "${out_dir}/BENCH_columnar.json" \
    "${bench_dir}/bench_columnar" "${out_dir}/BENCH_columnar.json"
fi

# Delta-driven Γ scheduling on the kilorule workload (scheduler on vs
# off, in-run bit-identity check, >= 3x speedup gate on the non-smoke
# delta_filtered@1 config).
if [[ -x "${bench_dir}/bench_scheduler" ]]; then
  run_bench bench_scheduler "${out_dir}/BENCH_scheduler.json" \
    "${bench_dir}/bench_scheduler" "${out_dir}/BENCH_scheduler.json"
fi

# Incremental fixpoint maintenance: multi-commit scripts replayed with
# maintenance on vs off (in-run per-commit bit-identity check, >= 3x
# speedup gate on every measured config of both cases).
if [[ -x "${bench_dir}/bench_incremental" ]]; then
  run_bench bench_incremental "${out_dir}/BENCH_incremental.json" \
    "${bench_dir}/bench_incremental" "${out_dir}/BENCH_incremental.json"
fi

# Concurrent Session serving: group-commit throughput vs fsync-per-commit
# at 8 writers under fsync (>= 2x gate), snapshot readers alongside, and
# an in-run bit-identity check against a sequential oracle replay.
if [[ -x "${bench_dir}/bench_serve" ]]; then
  run_bench bench_serve "${out_dir}/BENCH_serving.json" \
    "${bench_dir}/bench_serve" "${out_dir}/BENCH_serving.json"
fi

if ((${#failed[@]} > 0)); then
  echo "error: ${#failed[@]} bench(es) failed: ${failed[*]}" >&2
  exit 1
fi
echo "JSON written to ${out_dir}/BENCH_*.json"
