// P2 — cost-based join planning: wall-clock for the same fixpoint
// computation under the heuristic (source-order) planner vs the
// cost-based planner, with an in-bench set-identity check (both planners
// must produce the same database and step counts, or the bench aborts).
// Emits BENCH_planner.json with per-case times, the cost-based speedup,
// and the planner counters (plans compiled, replans, estimated vs actual
// rows) so estimate quality is inspectable.
//
// The skewed cases are the showcase: a huge relation joined against a
// tiny one, where source order scans the big side and probes the tiny
// side — the cost-based planner flips the order and turns the scan into
// a handful of index probes. The uniform control case guards the other
// direction: when statistics offer no win, cost-based planning must not
// regress.
//
//   bench_planner [--smoke] [output.json]   (default: BENCH_planner.json)
//
// --smoke shrinks the workloads so CI can exercise the full path
// (including the JSON schema) in a couple of seconds; the timings of a
// smoke run are meaningless and the JSON says so.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "park/park.h"
#include "util/string_util.h"
#include "workload/graph_gen.h"

namespace park {
namespace {

struct BenchCase {
  std::string name;
  Workload workload;
};

struct ConfigResult {
  const char* planner = "heuristic";
  double best_ms = 0;
  double speedup = 1.0;  // heuristic best_ms / this best_ms
  size_t gamma_steps = 0;
  size_t plans_compiled = 0;
  size_t plan_replans = 0;
  size_t estimated_rows = 0;
  size_t actual_rows = 0;
};

/// Deterministic xorshift so fact generation needs no library RNG.
struct Rand {
  uint64_t state;
  explicit Rand(uint64_t seed) : state(seed * 2654435761u + 1) {}
  uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

/// The canonical skew: big(X, Y) with `big_rows` tuples over `distinct_y`
/// Y-values, sel(Y) with a handful of rows. Source order scans `big` and
/// probes `sel` per tuple; cost order scans `sel` and probes `big` on Y.
Workload MakeSkewJoinWorkload(int big_rows, int distinct_y, int sel_rows,
                              uint64_t seed) {
  Workload w(MakeSymbolTable());
  w.program = ParseProgram(
                  "skew: big(X, Y), sel(Y) -> +out(X, Y).\n",
                  w.symbols)
                  .value();
  Rand rng(seed);
  for (int i = 0; i < big_rows; ++i) {
    w.database.Insert(IntAtom2(w.symbols, "big", i,
                               static_cast<int64_t>(rng.Next() % distinct_y)));
  }
  for (int i = 0; i < sel_rows; ++i) {
    w.database.Insert(IntAtom(w.symbols, "sel", i));
  }
  w.description = StrFormat("skew join, %d big rows / %d sel rows",
                            big_rows, sel_rows);
  return w;
}

/// A three-way chain whose only selective literal is the LAST one in
/// source order: a(X, Y) ⋈ b(Y, Z) ⋈ c(Z) with |c| tiny. The cost-based
/// plan starts from c and walks the chain backwards over index probes.
Workload MakeChainTailWorkload(int rows, int distinct, int c_rows,
                               uint64_t seed) {
  Workload w(MakeSymbolTable());
  w.program = ParseProgram(
                  "chain: a(X, Y), b(Y, Z), c(Z) -> +out(X, Z).\n",
                  w.symbols)
                  .value();
  Rand rng(seed);
  for (int i = 0; i < rows; ++i) {
    w.database.Insert(IntAtom2(w.symbols, "a", i,
                               static_cast<int64_t>(rng.Next() % distinct)));
    w.database.Insert(
        IntAtom2(w.symbols, "b", static_cast<int64_t>(rng.Next() % distinct),
                 static_cast<int64_t>(rng.Next() % distinct)));
  }
  for (int i = 0; i < c_rows; ++i) {
    w.database.Insert(IntAtom(w.symbols, "c", i));
  }
  w.description = StrFormat("chain with selective tail, %d rows / |c|=%d",
                            rows, c_rows);
  return w;
}

ParkResult RunOnce(const Workload& w, PlannerMode planner,
                   double* elapsed_ms) {
  ParkOptions options;
  options.planner_mode = planner;
  options.gamma_mode = GammaMode::kSemiNaive;
  auto start = std::chrono::steady_clock::now();
  auto result = Park(w.program, w.database, options);
  auto end = std::chrono::steady_clock::now();
  PARK_CHECK(result.ok()) << result.status().ToString();
  *elapsed_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  return std::move(*result);
}

std::vector<ConfigResult> RunCase(const BenchCase& bench, int repetitions) {
  std::vector<ConfigResult> configs;
  std::string reference_db;
  size_t reference_steps = 0;
  for (PlannerMode planner :
       {PlannerMode::kHeuristic, PlannerMode::kCostBased}) {
    ConfigResult config;
    config.planner =
        planner == PlannerMode::kHeuristic ? "heuristic" : "cost_based";
    double best = -1;
    for (int rep = 0; rep < repetitions; ++rep) {
      double ms = 0;
      ParkResult result = RunOnce(bench.workload, planner, &ms);
      if (best < 0 || ms < best) best = ms;
      std::string db = result.database.ToString();
      if (configs.empty() && rep == 0) {
        reference_db = db;
        reference_steps = result.stats.gamma_steps;
      }
      // The whole point: the planner mode changes enumeration order,
      // never the result.
      PARK_CHECK(db == reference_db)
          << bench.name << ": " << config.planner
          << " database differs from the heuristic result";
      PARK_CHECK(result.stats.gamma_steps == reference_steps)
          << bench.name << ": " << config.planner
          << " run took a different number of steps";
      config.gamma_steps = result.stats.gamma_steps;
      config.plans_compiled = result.stats.plans_compiled;
      config.plan_replans = result.stats.plan_replans;
      config.estimated_rows = result.stats.planner_estimated_rows;
      config.actual_rows = result.stats.planner_actual_rows;
    }
    config.best_ms = best;
    config.speedup = configs.empty() ? 1.0 : configs[0].best_ms / best;
    configs.push_back(config);
    std::printf(
        "  %-24s %-10s  %8.2f ms  speedup %.2fx  "
        "(%zu plan(s), est %zu / actual %zu rows)\n",
        bench.name.c_str(), config.planner, best, config.speedup,
        config.plans_compiled, config.estimated_rows, config.actual_rows);
  }
  return configs;
}

std::string ToJson(
    const std::vector<std::pair<std::string, std::vector<ConfigResult>>>&
        results,
    bool smoke) {
  JsonWriter w = bench::BeginBenchJson("park-bench-planner-v1");
  w.Key("smoke").Bool(smoke);
  w.Key("set_identical").Bool(true);
  w.Key("cases").BeginArray();
  for (const auto& [name, configs] : results) {
    w.BeginObject();
    w.Key("name").String(name);
    w.Key("configs").BeginArray();
    for (const ConfigResult& c : configs) {
      w.BeginObject();
      w.Key("planner").String(c.planner);
      w.Key("best_ms").Double(c.best_ms);
      w.Key("speedup").Double(c.speedup);
      w.Key("gamma_steps").UInt(c.gamma_steps);
      w.Key("plans_compiled").UInt(c.plans_compiled);
      w.Key("replans").UInt(c.plan_replans);
      w.Key("estimated_rows").UInt(c.estimated_rows);
      w.Key("actual_rows").UInt(c.actual_rows);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).str();
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_planner.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  const int skew_rows = smoke ? 2000 : 40000;
  const int chain_rows = smoke ? 500 : 4000;
  const int closure_edges = smoke ? 96 : 512;
  const int closure_nodes = smoke ? 48 : 160;
  const int repetitions = smoke ? 1 : 5;

  std::vector<BenchCase> cases;
  cases.push_back({"skew_join",
                   MakeSkewJoinWorkload(skew_rows, /*distinct_y=*/200,
                                        /*sel_rows=*/4, /*seed=*/11)});
  cases.push_back({"chain_selective_tail",
                   MakeChainTailWorkload(chain_rows, /*distinct=*/64,
                                         /*c_rows=*/4, /*seed=*/29)});
  // Control: uniform relation sizes, no skew to exploit. The cost-based
  // planner must stay within noise of the heuristic here (the acceptance
  // bar is no regression beyond 5%).
  cases.push_back({"closure_uniform",
                   MakeTransitiveClosureWorkload(GraphShape::kRandom,
                                                 closure_nodes,
                                                 closure_edges,
                                                 /*seed=*/17)});

  std::printf("bench_planner%s\n",
              smoke ? " [smoke mode: timings meaningless]" : "");
  std::vector<std::pair<std::string, std::vector<ConfigResult>>> results;
  for (const BenchCase& bench : cases) {
    results.emplace_back(bench.name, RunCase(bench, repetitions));
  }

  if (!bench::WriteBenchJson(out_path, ToJson(results, smoke))) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace park

int main(int argc, char** argv) { return park::Main(argc, argv); }
