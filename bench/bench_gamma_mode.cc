// A2 — ablation of the Γ evaluation strategy: the paper's literal
// "apply all rules in parallel at every step" (kNaive) vs delta-filtered
// rule scheduling (kDeltaFiltered). Same semantics (asserted continuously
// by gamma_mode_test); this bench measures the work saved — dramatic on
// programs with many rules that fire rarely, negligible on tiny programs
// where every rule is live every step.

#include <benchmark/benchmark.h>

#include "park/park.h"
#include "util/string_util.h"
#include "workload/conflict_gen.h"
#include "workload/graph_gen.h"

namespace park {
namespace {

/// Closure over a path graph plus `extra_rules` rules for unrelated,
/// never-populated predicates — the "wide schema, narrow activity"
/// shape of real trigger sets.
struct WideScenario {
  std::shared_ptr<SymbolTable> symbols = MakeSymbolTable();
  Program program{symbols};
  Database database{symbols};
};

WideScenario MakeWideScenario(int chain, int extra_rules) {
  WideScenario s;
  std::string rules =
      "edge(X, Y) -> +path(X, Y). path(X, Y), edge(Y, Z) -> +path(X, Z).";
  for (int i = 0; i < extra_rules; ++i) {
    rules += StrFormat(" src%d(X) -> +dst%d(X).", i, i);
  }
  s.program = ParseProgram(rules, s.symbols).value();
  std::string facts;
  for (int i = 0; i < chain; ++i) {
    facts += StrFormat("edge(%d, %d). ", i, i + 1);
  }
  s.database = ParseDatabase(facts, s.symbols).value();
  return s;
}

void RunWide(benchmark::State& state, GammaMode mode) {
  WideScenario s = MakeWideScenario(/*chain=*/48,
                                    static_cast<int>(state.range(0)));
  ParkStats last;
  for (auto _ : state) {
    ParkOptions options;
    options.gamma_mode = mode;
    auto result = Park(s.program, s.database, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    last = result->stats;
    benchmark::DoNotOptimize(result->database);
  }
  state.counters["rule_evals"] =
      static_cast<double>(last.rule_evaluations);
  state.counters["rules"] = static_cast<double>(s.program.size());
}

void BM_WideNaive(benchmark::State& state) {
  RunWide(state, GammaMode::kNaive);
}
void BM_WideDeltaFiltered(benchmark::State& state) {
  RunWide(state, GammaMode::kDeltaFiltered);
}
void BM_WideSemiNaive(benchmark::State& state) {
  RunWide(state, GammaMode::kSemiNaive);
}
BENCHMARK(BM_WideNaive)->Arg(0)->Arg(64)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WideDeltaFiltered)->Arg(0)->Arg(64)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WideSemiNaive)->Arg(0)->Arg(64)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

// Deep recursive closure: the case where per-literal deltas dominate —
// naive and delta-filtered Γ re-derive the entire known closure at every
// step; semi-naive only extends the frontier.
void RunClosure(benchmark::State& state, GammaMode mode) {
  Workload w = MakeTransitiveClosureWorkload(
      GraphShape::kPath, static_cast<int>(state.range(0)), 0, 1);
  ParkStats last;
  for (auto _ : state) {
    ParkOptions options;
    options.gamma_mode = mode;
    auto result = Park(w.program, w.database, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    last = result->stats;
    benchmark::DoNotOptimize(result->database);
  }
  state.counters["rule_evals"] =
      static_cast<double>(last.rule_evaluations);
  state.counters["derived"] = static_cast<double>(last.derived_marks);
}

void BM_ClosureNaive(benchmark::State& state) {
  RunClosure(state, GammaMode::kNaive);
}
void BM_ClosureDeltaFiltered(benchmark::State& state) {
  RunClosure(state, GammaMode::kDeltaFiltered);
}
void BM_ClosureSemiNaive(benchmark::State& state) {
  RunClosure(state, GammaMode::kSemiNaive);
}
BENCHMARK(BM_ClosureNaive)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ClosureDeltaFiltered)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ClosureSemiNaive)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

// On conflict-dense flat workloads both modes do the same work (all rules
// live in step 1): the filtered overhead must be ~zero.
void RunFlat(benchmark::State& state, GammaMode mode) {
  Workload w = MakeConflictPairsWorkload(512, 0.5, 83);
  ParkStats last;
  for (auto _ : state) {
    ParkOptions options;
    options.gamma_mode = mode;
    auto result = Park(w.program, w.database, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    last = result->stats;
    benchmark::DoNotOptimize(result->database);
  }
  state.counters["rule_evals"] =
      static_cast<double>(last.rule_evaluations);
}

void BM_FlatNaive(benchmark::State& state) {
  RunFlat(state, GammaMode::kNaive);
}
void BM_FlatDeltaFiltered(benchmark::State& state) {
  RunFlat(state, GammaMode::kDeltaFiltered);
}
void BM_FlatSemiNaive(benchmark::State& state) {
  RunFlat(state, GammaMode::kSemiNaive);
}
BENCHMARK(BM_FlatNaive)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FlatDeltaFiltered)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FlatSemiNaive)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace park

BENCHMARK_MAIN();
