// C4 — PARK vs the two baselines (paper §4.1/§3):
//   * pure inflationary fixpoint [6] — identical results and essentially
//     identical cost on conflict-free programs (PARK's conflict machinery
//     must be pay-as-you-go);
//   * the naive cancel-at-the-end strawman — similar cost, but WRONG
//     results once conflicts interact (the `agrees` counter drops to 0 on
//     the stale-derivation workload).

#include <benchmark/benchmark.h>

#include "park/park.h"
#include "util/string_util.h"
#include "workload/graph_gen.h"

namespace park {
namespace {

/// Scaled-up §4.1 P2: n independent copies of the stale-derivation
/// pattern, where the naive semantics keeps every s(i) and PARK drops
/// them all.
struct StaleScenario {
  std::shared_ptr<SymbolTable> symbols = MakeSymbolTable();
  Program program{symbols};
  Database database{symbols};
};

StaleScenario MakeStaleScenario(int copies) {
  StaleScenario s;
  std::string rules;
  std::string facts;
  for (int i = 0; i < copies; ++i) {
    rules += StrFormat("p(%d) -> +q(%d).\n", i, i);
    rules += StrFormat("p(%d) -> -a(%d).\n", i, i);
    rules += StrFormat("q(%d) -> +a(%d).\n", i, i);
    rules += StrFormat("a(%d) -> +s(%d).\n", i, i);
    facts += StrFormat("p(%d). ", i);
  }
  s.program = ParseProgram(rules, s.symbols).value();
  s.database = ParseDatabase(facts, s.symbols).value();
  return s;
}

void BM_ParkOnClosure(benchmark::State& state) {
  Workload w = MakeTransitiveClosureWorkload(
      GraphShape::kRandom, static_cast<int>(state.range(0)) / 4,
      static_cast<int>(state.range(0)), 31);
  for (auto _ : state) {
    auto result = Park(w.program, w.database);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result->database);
  }
}
BENCHMARK(BM_ParkOnClosure)->RangeMultiplier(2)->Range(64, 512)
    ->Unit(benchmark::kMillisecond);

void BM_InflationaryOnClosure(benchmark::State& state) {
  Workload w = MakeTransitiveClosureWorkload(
      GraphShape::kRandom, static_cast<int>(state.range(0)) / 4,
      static_cast<int>(state.range(0)), 31);
  for (auto _ : state) {
    auto result = InflationaryFixpoint(w.program, w.database);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result->database);
  }
}
BENCHMARK(BM_InflationaryOnClosure)->RangeMultiplier(2)->Range(64, 512)
    ->Unit(benchmark::kMillisecond);

void BM_NaiveCancelOnClosure(benchmark::State& state) {
  Workload w = MakeTransitiveClosureWorkload(
      GraphShape::kRandom, static_cast<int>(state.range(0)) / 4,
      static_cast<int>(state.range(0)), 31);
  for (auto _ : state) {
    auto result = NaiveCancelSemantics(w.program, w.database);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result->database);
  }
}
BENCHMARK(BM_NaiveCancelOnClosure)->RangeMultiplier(2)->Range(64, 512)
    ->Unit(benchmark::kMillisecond);

void BM_ParkOnStale(benchmark::State& state) {
  StaleScenario s = MakeStaleScenario(static_cast<int>(state.range(0)));
  size_t wrong_s_atoms = 0;
  for (auto _ : state) {
    auto result = Park(s.program, s.database);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    wrong_s_atoms = 0;
    result->database.ForEach([&](const GroundAtom& atom) {
      if (s.symbols->PredicateName(atom.predicate()) == "s") {
        ++wrong_s_atoms;
      }
    });
  }
  // PARK must keep NO stale s(i).
  state.counters["stale_s_kept"] = static_cast<double>(wrong_s_atoms);
}
BENCHMARK(BM_ParkOnStale)->RangeMultiplier(4)->Range(16, 1024)
    ->Unit(benchmark::kMillisecond);

void BM_NaiveOnStale(benchmark::State& state) {
  StaleScenario s = MakeStaleScenario(static_cast<int>(state.range(0)));
  size_t wrong_s_atoms = 0;
  for (auto _ : state) {
    auto result = NaiveCancelSemantics(s.program, s.database);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    wrong_s_atoms = 0;
    result->database.ForEach([&](const GroundAtom& atom) {
      if (s.symbols->PredicateName(atom.predicate()) == "s") {
        ++wrong_s_atoms;
      }
    });
  }
  // The naive semantics keeps every stale s(i): one per copy.
  state.counters["stale_s_kept"] = static_cast<double>(wrong_s_atoms);
}
BENCHMARK(BM_NaiveOnStale)->RangeMultiplier(4)->Range(16, 1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace park

BENCHMARK_MAIN();
