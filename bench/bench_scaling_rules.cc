// C2 — scaling in the program size |P| (paper §4.2: "the above iterative
// procedure is only executed at most size(P) times"): runtime and restart
// counts as the number of rules grows, at fixed conflict fraction. The
// restarts counter should track the number of conflicted pairs, never
// exceed it, and runtime should stay polynomial.

#include <benchmark/benchmark.h>

#include "park/park.h"
#include "workload/conflict_gen.h"

namespace park {
namespace {

void BM_RuleScaling(benchmark::State& state, double conflict_fraction) {
  int pairs = static_cast<int>(state.range(0));
  Workload w =
      MakeConflictPairsWorkload(pairs, conflict_fraction, /*seed=*/29);
  ParkStats last;
  for (auto _ : state) {
    auto result = Park(w.program, w.database);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    last = result->stats;
    benchmark::DoNotOptimize(result->database);
  }
  state.counters["rules"] = static_cast<double>(w.program.size());
  state.counters["restarts"] = static_cast<double>(last.restarts);
  state.counters["conflicts"] =
      static_cast<double>(last.conflicts_resolved);
  state.counters["blocked"] = static_cast<double>(last.blocked_instances);
}

BENCHMARK_CAPTURE(BM_RuleScaling, conflict_free, 0.0)
    ->RangeMultiplier(4)->Range(16, 4096)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_RuleScaling, ten_pct_conflicts, 0.1)
    ->RangeMultiplier(4)->Range(16, 4096)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace park

BENCHMARK_MAIN();
