// C3 — "Unambiguous Semantics" (paper §3): repeated evaluations and rule
// permutations must yield the identical database state. The benchmark
// measures evaluation time on randomized programs while the `stable`
// counter (1.0 = every run identical) verifies the claim on the fly.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "park/park.h"
#include "util/random.h"
#include "util/string_util.h"

namespace park {
namespace {

std::string RandomProgramText(uint64_t seed, int num_atoms, int num_rules) {
  Rng rng(seed);
  std::string text;
  auto atom = [](int i) { return "a" + std::to_string(i); };
  for (int r = 0; r < num_rules; ++r) {
    int len = static_cast<int>(rng.UniformInt(1, 3));
    for (int b = 0; b < len; ++b) {
      if (b > 0) text += ", ";
      if (rng.Bernoulli(0.25)) text += "!";
      text += atom(static_cast<int>(rng.UniformInt(0, num_atoms - 1)));
    }
    text += rng.Bernoulli(0.5) ? " -> +" : " -> -";
    text += atom(static_cast<int>(rng.UniformInt(0, num_atoms - 1)));
    text += ".\n";
  }
  return text;
}

std::string RandomFacts(uint64_t seed, int num_atoms) {
  Rng rng(seed ^ 0x5a5a);
  std::string text;
  for (int i = 0; i < num_atoms; ++i) {
    if (rng.Bernoulli(0.4)) text += "a" + std::to_string(i) + ". ";
  }
  return text;
}

void BM_DeterminismAcrossRuns(benchmark::State& state) {
  int rules = static_cast<int>(state.range(0));
  std::string program_text = RandomProgramText(41, rules / 2, rules);
  std::string facts = RandomFacts(41, rules / 2);
  std::string reference;
  bool stable = true;
  for (auto _ : state) {
    auto symbols = MakeSymbolTable();
    auto program = ParseProgram(program_text, symbols);
    auto db = ParseDatabase(facts, symbols);
    auto result = Park(*program, *db);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    std::string rendered = result->database.ToString();
    if (reference.empty()) {
      reference = rendered;
    } else if (rendered != reference) {
      stable = false;
    }
  }
  state.counters["stable"] = stable ? 1.0 : 0.0;
  state.counters["rules"] = static_cast<double>(rules);
}
BENCHMARK(BM_DeterminismAcrossRuns)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_DeterminismAcrossRuleOrder(benchmark::State& state) {
  int rules = static_cast<int>(state.range(0));
  std::string program_text = RandomProgramText(43, rules / 2, rules);
  std::string facts = RandomFacts(43, rules / 2);
  std::vector<std::string> lines = Split(program_text, '\n');
  lines.erase(std::remove(lines.begin(), lines.end(), std::string()),
              lines.end());
  Rng rng(99);
  std::string reference;
  bool stable = true;
  for (auto _ : state) {
    state.PauseTiming();
    rng.Shuffle(lines);
    std::string shuffled = Join(lines, "\n");
    state.ResumeTiming();
    auto symbols = MakeSymbolTable();
    auto program = ParseProgram(shuffled, symbols);
    auto db = ParseDatabase(facts, symbols);
    auto result = Park(*program, *db);  // inertia: order-independent
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    std::string rendered = result->database.ToString();
    if (reference.empty()) {
      reference = rendered;
    } else if (rendered != reference) {
      stable = false;
    }
  }
  state.counters["stable"] = stable ? 1.0 : 0.0;
}
BENCHMARK(BM_DeterminismAcrossRuleOrder)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace park

BENCHMARK_MAIN();
