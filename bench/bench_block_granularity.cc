// A1 — ablation of the §4.2 refinement: blocking the losing side of ALL
// detected conflicts per round (the paper's main definition) vs blocking
// only the first conflict per round ("include only a non-empty part of
// conflicts into blocked"). The paper predicts the all-conflicts variant
// may block instances unnecessarily (larger blocked set, fewer restarts);
// the first-only variant blocks minimally but restarts more.

#include <benchmark/benchmark.h>

#include "park/park.h"
#include "workload/conflict_gen.h"
#include "workload/graph_gen.h"

namespace park {
namespace {

void RunGraph(benchmark::State& state, BlockGranularity granularity) {
  Workload w =
      MakeIrreflexiveGraphWorkload(static_cast<int>(state.range(0)));
  ParkStats last;
  for (auto _ : state) {
    ParkOptions options;
    options.policy = MakeIrreflexiveGraphPolicy();
    options.block_granularity = granularity;
    auto result = Park(w.program, w.database, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    last = result->stats;
    benchmark::DoNotOptimize(result->database);
  }
  state.counters["blocked"] = static_cast<double>(last.blocked_instances);
  state.counters["restarts"] = static_cast<double>(last.restarts);
  state.counters["conflicts"] =
      static_cast<double>(last.conflicts_resolved);
}

void BM_GraphBlockAll(benchmark::State& state) {
  RunGraph(state, BlockGranularity::kAllConflicts);
}
void BM_GraphBlockFirstOnly(benchmark::State& state) {
  RunGraph(state, BlockGranularity::kFirstConflictOnly);
}
BENCHMARK(BM_GraphBlockAll)->Arg(3)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GraphBlockFirstOnly)->Arg(3)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void RunPairs(benchmark::State& state, BlockGranularity granularity) {
  Workload w = MakeConflictPairsWorkload(
      static_cast<int>(state.range(0)), 1.0, /*seed=*/71);
  ParkStats last;
  for (auto _ : state) {
    ParkOptions options;
    options.block_granularity = granularity;
    auto result = Park(w.program, w.database, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    last = result->stats;
    benchmark::DoNotOptimize(result->database);
  }
  state.counters["blocked"] = static_cast<double>(last.blocked_instances);
  state.counters["restarts"] = static_cast<double>(last.restarts);
}

void BM_PairsBlockAll(benchmark::State& state) {
  RunPairs(state, BlockGranularity::kAllConflicts);
}
void BM_PairsBlockFirstOnly(benchmark::State& state) {
  RunPairs(state, BlockGranularity::kFirstConflictOnly);
}
BENCHMARK(BM_PairsBlockAll)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PairsBlockFirstOnly)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace park

BENCHMARK_MAIN();
