// C7 — restart cost vs conflict density: every conflict interrupts the
// inflationary computation and re-derives from I° (the Δ operator's
// "resume with the initial database instance"). Two sweeps:
//   * density sweep: fraction of conflicted targets from 0% to 100%;
//   * restart-chain: conflicts staggered along a long derivation chain,
//     so each restart replays the chain prefix — the worst case for the
//     restart-from-I° design.

#include <benchmark/benchmark.h>

#include "park/park.h"
#include "workload/conflict_gen.h"

namespace park {
namespace {

void BM_ConflictDensity(benchmark::State& state) {
  double fraction = static_cast<double>(state.range(0)) / 100.0;
  Workload w = MakeConflictPairsWorkload(256, fraction, /*seed=*/53);
  ParkStats last;
  for (auto _ : state) {
    auto result = Park(w.program, w.database);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    last = result->stats;
    benchmark::DoNotOptimize(result->database);
  }
  state.counters["pct"] = static_cast<double>(state.range(0));
  state.counters["restarts"] = static_cast<double>(last.restarts);
  state.counters["conflicts"] =
      static_cast<double>(last.conflicts_resolved);
}
BENCHMARK(BM_ConflictDensity)
    ->Arg(0)->Arg(5)->Arg(10)->Arg(25)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_RestartChain(benchmark::State& state) {
  int conflicts = static_cast<int>(state.range(0));
  Workload w = MakeRestartChainWorkload(/*chain_len=*/128, conflicts);
  ParkStats last;
  for (auto _ : state) {
    auto result = Park(w.program, w.database);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    last = result->stats;
    benchmark::DoNotOptimize(result->database);
  }
  state.counters["restarts"] = static_cast<double>(last.restarts);
  state.counters["gamma_steps"] = static_cast<double>(last.gamma_steps);
}
BENCHMARK(BM_RestartChain)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_FirstConflictGranularityOnDensity(benchmark::State& state) {
  double fraction = static_cast<double>(state.range(0)) / 100.0;
  Workload w = MakeConflictPairsWorkload(256, fraction, /*seed=*/53);
  ParkStats last;
  for (auto _ : state) {
    ParkOptions options;
    options.block_granularity = BlockGranularity::kFirstConflictOnly;
    auto result = Park(w.program, w.database, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    last = result->stats;
    benchmark::DoNotOptimize(result->database);
  }
  state.counters["pct"] = static_cast<double>(state.range(0));
  state.counters["restarts"] = static_cast<double>(last.restarts);
}
BENCHMARK(BM_FirstConflictGranularityOnDensity)
    ->Arg(5)->Arg(25)->Arg(50)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace park

BENCHMARK_MAIN();
