// SV — concurrent serving: group-commit throughput and snapshot-reader
// behaviour of the Session front-end (docs/SERVING.md). W writer threads
// hammer one durable Session while R reader threads take snapshots and
// query them; the max_group_size sweep pits fsync-per-commit
// (max_group_size = 1, the ActiveDatabase baseline behaviour) against
// folded group commits, under the SAME durability setting — the whole
// point of batching is that k transactions share one PARK firing and one
// journal fsync.
//
//   bench_serve [--smoke] [output.json]   (default: BENCH_serving.json)
//
// Every configuration's final state is checked bit-identically against a
// sequential single-threaded oracle committing the same updates — a
// concurrency bug fails the bench, not just the numbers. --smoke shrinks
// the run for CI (sync mode none, fewer commits) and skips the gate.
//
// Non-smoke runs gate on 8 writers under fsync: the largest
// max_group_size configuration must be >= 2x the commits/sec of
// max_group_size = 1, or the bench exits non-zero.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "eca/journal.h"
#include "park/park.h"
#include "util/string_util.h"

namespace park {
namespace {

constexpr char kRules[] = R"(
  onboard: +emp(X) -> +active(X).
  cleanup: -emp(X), payroll(X, S) -> -payroll(X, S).
)";

struct ConfigResult {
  size_t max_group_size = 1;
  uint64_t commits = 0;
  double wall_ms = 0;
  double commits_per_sec = 0;
  double mean_commit_latency_us = 0;
  uint64_t batches = 0;
  double mean_batch_size = 1.0;
  uint64_t max_batch_size = 1;
  uint64_t journal_records = 0;
  uint64_t snapshot_reads = 0;
  double throughput_vs_unbatched = 1.0;
  std::string final_state;  // not serialized; the bit-identity check
};

std::string FreshDir(const std::string& name) {
  std::string dir =
      std::filesystem::temp_directory_path() / ("park_bench_" + name);
  std::filesystem::remove_all(dir);
  return dir;
}

const char* SyncModeName(JournalSyncMode mode) {
  switch (mode) {
    case JournalSyncMode::kNone: return "none";
    case JournalSyncMode::kFlush: return "fdatasync";
    case JournalSyncMode::kFsync: return "fsync";
  }
  return "?";
}

ConfigResult RunConfig(int writers, int readers, int commits_per_writer,
                       JournalSyncMode sync_mode, size_t max_group_size) {
  ConfigResult result;
  result.max_group_size = max_group_size;

  const std::string dir =
      FreshDir(StrFormat("serve_g%zu", max_group_size));
  Session::Params params;
  params.rules = kRules;
  params.sync_mode = sync_mode;
  params.max_group_size = max_group_size;
  auto session_or = Session::Open(dir, std::move(params));
  PARK_CHECK(session_or.ok()) << session_or.status().ToString();
  std::unique_ptr<Session> session = std::move(session_or).value();

  std::atomic<bool> go{false};
  std::atomic<bool> done{false};
  std::atomic<uint64_t> latency_ns_total{0};
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < commits_per_writer; ++i) {
        Transaction tx = session->Begin();
        tx.Insert("emp", {StrFormat("w%d_%d", w, i)});
        auto start = std::chrono::steady_clock::now();
        auto report = std::move(tx).Commit();
        auto end = std::chrono::steady_clock::now();
        PARK_CHECK(report.ok()) << report.status().ToString();
        latency_ns_total.fetch_add(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                .count()));
        committed.fetch_add(1);
      }
    });
  }
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!done.load(std::memory_order_acquire)) {
        Snapshot snap = session->Snapshot();
        auto hits = snap.Query("active(X)");
        PARK_CHECK(hits.ok()) << hits.status().ToString();
        reads.fetch_add(1);
        std::this_thread::yield();
      }
    });
  }

  auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (int w = 0; w < writers; ++w) threads[w].join();
  auto end = std::chrono::steady_clock::now();
  done.store(true, std::memory_order_release);
  for (size_t t = static_cast<size_t>(writers); t < threads.size(); ++t) {
    threads[t].join();
  }

  result.commits = committed.load();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  result.commits_per_sec =
      result.wall_ms > 0 ? 1000.0 * result.commits / result.wall_ms : 0;
  result.mean_commit_latency_us =
      result.commits > 0
          ? latency_ns_total.load() / 1000.0 / result.commits
          : 0;
  result.snapshot_reads = reads.load();

  ParkStats::ServingCounters counters = session->serving_stats();
  result.batches = counters.batches;
  result.mean_batch_size =
      counters.batches > 0
          ? static_cast<double>(counters.batched_txns) / counters.batches
          : 1.0;
  result.max_batch_size = counters.max_batch_size;
  result.final_state = session->Snapshot().ToString();
  session.reset();

  auto records = TransactionJournal::ReadRecords(dir + "/journal.log",
                                                 MakeSymbolTable());
  PARK_CHECK(records.ok()) << records.status().ToString();
  result.journal_records = records->size();
  std::filesystem::remove_all(dir);

  std::printf("  max_group_size=%-4zu %6llu commits in %8.1f ms  "
              "%8.0f commits/s  mean batch %.2f  %llu journal record(s)  "
              "%llu snapshot read(s)\n",
              max_group_size,
              static_cast<unsigned long long>(result.commits),
              result.wall_ms, result.commits_per_sec,
              result.mean_batch_size,
              static_cast<unsigned long long>(result.journal_records),
              static_cast<unsigned long long>(result.snapshot_reads));
  return result;
}

/// Single-threaded oracle: the same inserts, committed one at a time in
/// writer-major order, on a bare ActiveDatabase. Insert-only workload
/// with per-writer-distinct atoms, so every interleaving reaches this
/// same fixpoint — which is exactly what the bench asserts.
std::string SequentialOracle(int writers, int commits_per_writer) {
  ActiveDatabase db;
  PARK_CHECK(db.LoadRules(kRules).ok());
  for (int w = 0; w < writers; ++w) {
    for (int i = 0; i < commits_per_writer; ++i) {
      Transaction tx = db.Begin();
      tx.Insert("emp", {StrFormat("w%d_%d", w, i)});
      auto report = std::move(tx).Commit();
      PARK_CHECK(report.ok()) << report.status().ToString();
    }
  }
  return db.database().ToString();
}

std::string ToJson(int writers, int readers, JournalSyncMode sync_mode,
                   const std::vector<ConfigResult>& configs, bool smoke,
                   const char* gate) {
  JsonWriter w = bench::BeginBenchJson("park-bench-serving-v1");
  w.Key("smoke").Bool(smoke);
  w.Key("bit_identical").Bool(true);
  w.Key("gate").String(gate);
  w.Key("cases").BeginArray();
  w.BeginObject();
  w.Key("name").String("payroll_onboard");
  w.Key("writers").Int(writers);
  w.Key("readers").Int(readers);
  w.Key("sync_mode").String(SyncModeName(sync_mode));
  w.Key("configs").BeginArray();
  for (const ConfigResult& c : configs) {
    w.BeginObject();
    w.Key("max_group_size").UInt(c.max_group_size);
    w.Key("commits").UInt(c.commits);
    w.Key("wall_ms").Double(c.wall_ms);
    w.Key("commits_per_sec").Double(c.commits_per_sec);
    w.Key("mean_commit_latency_us").Double(c.mean_commit_latency_us);
    w.Key("batches").UInt(c.batches);
    w.Key("mean_batch_size").Double(c.mean_batch_size);
    w.Key("max_batch_size").UInt(c.max_batch_size);
    w.Key("journal_records").UInt(c.journal_records);
    w.Key("snapshot_reads").UInt(c.snapshot_reads);
    w.Key("throughput_vs_unbatched").Double(c.throughput_vs_unbatched);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.EndArray();
  w.EndObject();
  return std::move(w).str();
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  const int writers = smoke ? 4 : 8;
  const int readers = 2;
  const int commits_per_writer = smoke ? 8 : 64;
  const JournalSyncMode sync_mode =
      smoke ? JournalSyncMode::kNone : JournalSyncMode::kFsync;

  std::printf("bench_serve: %d writer(s) x %d commit(s), %d reader(s), "
              "sync=%s%s\n",
              writers, commits_per_writer, readers,
              SyncModeName(sync_mode),
              smoke ? " [smoke mode: timings meaningless]" : "");

  const std::string oracle = SequentialOracle(writers, commits_per_writer);

  std::vector<ConfigResult> configs;
  for (size_t max_group_size : {size_t{1}, size_t{8}, size_t{64}}) {
    configs.push_back(RunConfig(writers, readers, commits_per_writer,
                                sync_mode, max_group_size));
    // Concurrency must never show in the fixpoint: every configuration
    // ends bit-identical to the sequential oracle.
    PARK_CHECK(configs.back().final_state == oracle)
        << "max_group_size=" << max_group_size
        << ": served state diverges from the sequential oracle";
  }
  const double base = configs.front().commits_per_sec;
  for (ConfigResult& c : configs) {
    c.throughput_vs_unbatched = base > 0 ? c.commits_per_sec / base : 1.0;
  }

  const char* gate = "skipped";
  if (!smoke) {
    const double speedup = configs.back().throughput_vs_unbatched;
    if (speedup < 2.0) {
      std::fprintf(stderr,
                   "REGRESSION: group commit at %d writers under fsync is "
                   "%.2fx fsync-per-commit (want >= 2x)\n",
                   writers, speedup);
      return 1;
    }
    gate = "passed";
  }

  if (!bench::WriteBenchJson(
          out_path,
          ToJson(writers, readers, sync_mode, configs, smoke, gate))) {
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace park

int main(int argc, char** argv) { return park::Main(argc, argv); }
