// S-series — substrate micro-benchmarks: the storage, language, query and
// durability layers that carry the semantics. Not a paper experiment; this
// quantifies the "commercial DBMS" stand-in so the C1-C9 numbers can be
// interpreted (e.g. how much of a Γ step is index probing vs planning).

#include <benchmark/benchmark.h>

#include "park/park.h"
#include "util/random.h"
#include "util/string_util.h"

namespace park {
namespace {

void BM_RelationIndexedMatch(benchmark::State& state) {
  auto symbols = MakeSymbolTable();
  Relation rel(2);
  Rng rng(3);
  int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) {
    rel.Insert(Tuple{Value::Int(i % 100), Value::Int(i)});
  }
  int64_t hits = 0;
  for (auto _ : state) {
    TuplePattern pattern{Value::Int(rng.UniformInt(0, 99)), std::nullopt};
    rel.ForEachMatching(pattern, [&](const Tuple&) { ++hits; });
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RelationIndexedMatch)->Range(1'000, 100'000);

void BM_RelationFullScan(benchmark::State& state) {
  Relation rel(2);
  int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) {
    rel.Insert(Tuple{Value::Int(i % 100), Value::Int(i)});
  }
  int64_t count = 0;
  for (auto _ : state) {
    rel.ForEach([&](const Tuple&) { ++count; });
  }
  benchmark::DoNotOptimize(count);
}
BENCHMARK(BM_RelationFullScan)->Range(1'000, 100'000);

void BM_ParseProgramThroughput(benchmark::State& state) {
  std::string text;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    text += StrFormat(
        "r%d [prio=%d]: emp%d(X), !active%d(X), payroll%d(X, S) "
        "-> -payroll%d(X, S).\n",
        i, i, i, i, i, i);
  }
  for (auto _ : state) {
    auto program = ParseProgram(text, MakeSymbolTable());
    if (!program.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(program);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ParseProgramThroughput)->Arg(10)->Arg(100)->Arg(1000);

void BM_QueryBoundColumn(benchmark::State& state) {
  auto symbols = MakeSymbolTable();
  Database db(symbols);
  Rng rng(7);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    db.InsertAtom("payroll",
                  {StrFormat("e%d", i), StrFormat("%d", 1000 + i % 50)});
  }
  for (auto _ : state) {
    auto result = QueryDatabase(
        db, StrFormat("payroll(_, %d)",
                      1000 + static_cast<int>(rng.Uniform(50))),
        symbols);
    if (!result.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(result->bindings);
  }
}
BENCHMARK(BM_QueryBoundColumn)->Range(1'000, 64'000);

void BM_JournalAppend(benchmark::State& state) {
  auto symbols = MakeSymbolTable();
  std::string path = "/tmp/park_bench_journal";
  std::remove(path.c_str());
  auto journal = TransactionJournal::Open(path);
  if (!journal.ok()) {
    state.SkipWithError("cannot open journal");
    return;
  }
  UpdateSet updates;
  for (int i = 0; i < 8; ++i) {
    (void)updates.AddParsed(StrFormat("+user(u%d)", i), symbols);
  }
  for (auto _ : state) {
    Status status = journal->Append(updates, *symbols);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
  std::remove(path.c_str());
}
BENCHMARK(BM_JournalAppend);

void BM_DatabaseCloneAndDiff(benchmark::State& state) {
  auto symbols = MakeSymbolTable();
  Database db(symbols);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    db.InsertAtom("fact", {StrFormat("k%d", i)});
  }
  for (auto _ : state) {
    Database copy = db.Clone();
    copy.InsertAtom("fact", {"extra"});
    Database::Diff diff = copy.DiffWith(db);
    benchmark::DoNotOptimize(diff);
  }
}
BENCHMARK(BM_DatabaseCloneAndDiff)->Range(1'000, 64'000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace park

BENCHMARK_MAIN();
