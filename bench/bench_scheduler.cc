// P3 — delta-driven Γ scheduling on the kilorule workload: the same
// fixpoint computed with the dependency scheduler on vs off, with an
// in-bench bit-identity check (every scheduled run must reproduce the
// unscheduled database and step counts exactly, or the bench aborts).
// Emits BENCH_scheduler.json with per-config times, the on/off speedup,
// and the scheduler counters (rules_considered / rules_skipped / strata /
// pipeline_stages) that explain it: a kilorule step affects a handful of
// rules, so the unscheduled evaluator's per-step all-rules affectedness
// scan dominates and the watcher index removes it (docs/SCHEDULER.md).
//
//   bench_scheduler [--smoke] [output.json]  (default: BENCH_scheduler.json)
//
// --smoke shrinks the program and skips the speedup gate so CI can
// exercise the full path (including the JSON schema) in a second; the
// timings of a smoke run are meaningless and the JSON says so.
//
// Non-smoke runs gate on kilorule delta_filtered@1: scheduler-on must be
// >= 3x faster than scheduler-off, or the bench exits non-zero.

#include <cstdio>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "park/park.h"
#include "util/string_util.h"
#include "workload/kilorule_gen.h"

namespace park {
namespace {

struct ConfigResult {
  const char* gamma_mode = "delta_filtered";
  int threads = 1;
  double off_ms = 0;
  double on_ms = 0;
  double speedup = 1.0;  // off / on
  size_t gamma_steps = 0;
  // Scheduler counters of the scheduled run.
  size_t rules_considered = 0;
  size_t rules_skipped = 0;
  size_t strata = 0;
  size_t pipeline_stages = 0;
  // The same counter from the unscheduled run, for contrast.
  size_t off_rules_considered = 0;
};

ParkResult RunOnce(const Workload& w, GammaMode mode, int threads,
                   SchedulerMode scheduler, double* elapsed_ms) {
  ParkOptions options;
  options.gamma_mode = mode;
  options.num_threads = threads;
  options.scheduler_mode = scheduler;
  auto start = std::chrono::steady_clock::now();
  auto result = Park(w.program, w.database, options);
  auto end = std::chrono::steady_clock::now();
  PARK_CHECK(result.ok()) << result.status().ToString();
  *elapsed_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  return std::move(*result);
}

ConfigResult RunConfig(const Workload& w, const char* mode_name,
                       GammaMode mode, int threads, int repetitions) {
  ConfigResult config;
  config.gamma_mode = mode_name;
  config.threads = threads;
  double best_off = -1;
  double best_on = -1;
  std::string off_db;
  size_t off_steps = 0;
  // All unscheduled reps first, then all scheduled reps: interleaving the
  // two leaves each timed run with the other's allocator/cache wake, which
  // measurably inflates the scheduled times. ToString checks stay outside
  // the timed region either way (RunOnce times Park() only).
  for (int rep = 0; rep < repetitions; ++rep) {
    double ms = 0;
    ParkResult off = RunOnce(w, mode, threads, SchedulerMode::kOff, &ms);
    if (best_off < 0 || ms < best_off) best_off = ms;
    if (rep == 0) {
      off_db = off.database.ToString();
      off_steps = off.stats.gamma_steps;
    }
    config.off_rules_considered = off.stats.sched_rules_considered;
  }
  for (int rep = 0; rep < repetitions; ++rep) {
    double ms = 0;
    ParkResult on =
        RunOnce(w, mode, threads, SchedulerMode::kDependency, &ms);
    if (best_on < 0 || ms < best_on) best_on = ms;
    // The whole point: scheduling must be bit-identical, every run.
    PARK_CHECK(on.database.ToString() == off_db)
        << mode_name << "@" << threads
        << ": scheduled database differs from the unscheduled result";
    PARK_CHECK(on.stats.gamma_steps == off_steps)
        << mode_name << "@" << threads
        << ": scheduled run took a different number of steps";
    config.gamma_steps = on.stats.gamma_steps;
    config.rules_considered = on.stats.sched_rules_considered;
    config.rules_skipped = on.stats.sched_rules_skipped;
    config.strata = on.stats.sched_strata;
    config.pipeline_stages = on.stats.sched_pipeline_stages;
  }
  config.off_ms = best_off;
  config.on_ms = best_on;
  config.speedup = best_on > 0 ? best_off / best_on : 1.0;
  std::printf(
      "  %-16s threads=%d  off %8.2f ms  on %8.2f ms  speedup %.2fx  "
      "(considered %zu vs %zu, %zu strata)\n",
      mode_name, threads, best_off, best_on, config.speedup,
      config.rules_considered, config.off_rules_considered, config.strata);
  return config;
}

std::string ToJson(const std::string& case_name, size_t rules,
                   const std::vector<ConfigResult>& configs, bool smoke,
                   const char* gate) {
  JsonWriter w = bench::BeginBenchJson("park-bench-scheduler-v1");
  w.Key("smoke").Bool(smoke);
  w.Key("bit_identical").Bool(true);
  // kilorule delta_filtered@1 >= 3x gate: "passed", or "skipped" in
  // smoke mode (tiny program, timings meaningless).
  w.Key("gate").String(gate);
  w.Key("cases").BeginArray();
  w.BeginObject();
  w.Key("name").String(case_name);
  w.Key("rules").UInt(rules);
  w.Key("configs").BeginArray();
  for (const ConfigResult& c : configs) {
    w.BeginObject();
    w.Key("gamma_mode").String(c.gamma_mode);
    w.Key("threads").Int(c.threads);
    w.Key("scheduler_off_ms").Double(c.off_ms);
    w.Key("scheduler_on_ms").Double(c.on_ms);
    w.Key("speedup").Double(c.speedup);
    w.Key("gamma_steps").UInt(c.gamma_steps);
    w.Key("rules_considered").UInt(c.rules_considered);
    w.Key("rules_skipped").UInt(c.rules_skipped);
    w.Key("strata").UInt(c.strata);
    w.Key("pipeline_stages").UInt(c.pipeline_stages);
    w.Key("off_rules_considered").UInt(c.off_rules_considered);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.EndArray();
  w.EndObject();
  return std::move(w).str();
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_scheduler.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  // The kilorule shape: >= 1000 rules, ~`levels` Γ steps each affecting
  // `chains` rules — per-step rule selection is the whole cost. The
  // unscheduled scan term grows with steps * rules (quadratic in
  // `levels`) while evaluation and one-time plan compilation grow
  // linearly, so deep-and-thin maximizes the contrast. Smoke mode
  // shrinks the program an order of magnitude.
  const int chains = smoke ? 4 : 8;
  const int levels = smoke ? 32 : 768;
  const int facts = 1;
  Workload w = MakeKiloruleWorkload(chains, levels, facts);
  const int repetitions = smoke ? 1 : 3;

  std::printf("bench_scheduler: %s%s\n", w.description.c_str(),
              smoke ? " [smoke mode: timings meaningless]" : "");

  std::vector<ConfigResult> configs;
  configs.push_back(RunConfig(w, "delta_filtered", GammaMode::kDeltaFiltered,
                              /*threads=*/1, repetitions));
  configs.push_back(RunConfig(w, "semi_naive", GammaMode::kSemiNaive,
                              /*threads=*/1, repetitions));
  if (smoke) {
    // Smoke always includes a pooled config: it drives the staged
    // parallel dispatch (one pool section per stratum group) regardless
    // of host width, which is what the CI TSan run is after.
    configs.push_back(RunConfig(w, "delta_filtered",
                                GammaMode::kDeltaFiltered,
                                /*threads=*/2, repetitions));
  } else if (std::thread::hardware_concurrency() >= 4) {
    configs.push_back(RunConfig(w, "delta_filtered",
                                GammaMode::kDeltaFiltered,
                                /*threads=*/4, repetitions));
  }

  const char* gate = "skipped";
  if (!smoke) {
    const ConfigResult& headline = configs[0];  // delta_filtered@1
    if (headline.speedup < 3.0) {
      std::fprintf(stderr,
                   "REGRESSION: kilorule delta_filtered@1 scheduler "
                   "speedup %.2fx (want >= 3x)\n",
                   headline.speedup);
      return 1;
    }
    gate = "passed";
  }

  std::string case_name = StrFormat("kilorule_%dx%d", chains, levels);
  if (!bench::WriteBenchJson(
          out_path,
          ToJson(case_name, w.program.size(), configs, smoke, gate))) {
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace park

int main(int argc, char** argv) { return park::Main(argc, argv); }
