// S2 — columnar batch execution: wall-clock for the same fixpoint
// computation under the tuple-at-a-time executor vs the batch-at-a-time
// executor over columnar segments (ParkOptions::exec_mode), with an
// in-bench set-identity check (both executors must produce the same
// database and step counts, or the bench aborts). Emits
// BENCH_columnar.json with per-case times, the batch speedup, and the
// executor counters (stream rows, probe-join vs sorted-merge-join rows,
// compactions) so the join mix is inspectable.
//
// The join-heavy naive-mode cases (closure, skew, chain) are the
// showcase: every Γ step re-joins full relations, which is exactly the
// regime where dictionary-coded equal-range probes and sorted-merge
// joins beat per-tuple hash probing. The payroll case guards the other
// direction: thousands of tiny per-employee units, where batch setup
// and compaction must not regress the run.
//
//   bench_columnar [--smoke] [--case NAME] [output.json]
//                                            (default: BENCH_columnar.json)
//
// --smoke shrinks the workloads so CI can exercise the full path
// (including the JSON schema) in a couple of seconds; the timings of a
// smoke run are meaningless and the JSON says so.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "park/park.h"
#include "util/string_util.h"
#include "workload/graph_gen.h"
#include "workload/payroll_gen.h"

namespace park {
namespace {

struct BenchCase {
  std::string name;
  Workload workload;
  GammaMode gamma_mode = GammaMode::kNaive;
};

struct ConfigResult {
  const char* exec = "tuple";
  double best_ms = 0;
  double speedup = 1.0;  // tuple best_ms / this best_ms
  size_t gamma_steps = 0;
  uint64_t batch_rows = 0;
  uint64_t probe_rows = 0;
  uint64_t merge_rows = 0;
  size_t storage_compactions = 0;
  size_t storage_segment_rows = 0;
};

/// Deterministic xorshift so fact generation needs no library RNG.
struct Rand {
  uint64_t state;
  explicit Rand(uint64_t seed) : state(seed * 2654435761u + 1) {}
  uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

/// Triangle query over one random edge relation: edge(X, Y) ⋈ edge(Y, Z)
/// with the closing edge(Z, X) as a fully-bound filter. The join graph is
/// a cycle, so every connected literal order has the same fan-out — there
/// is no cheap order for the planner to pick — and almost every candidate
/// path dies at the closing check, so the run is dominated by candidate
/// enumeration inside the executor rather than by the shared per-match
/// emission path. The probe keys (Y) repeat ~|E|/|V| times each, which is
/// the sorted-merge amortization showcase: the tuple executor chases one
/// hash-index node per candidate, the batch executor resolves each
/// distinct key once and walks contiguous sorted segment rows.
Workload MakeSkewWorkload(int num_nodes, int num_edges, uint64_t seed) {
  Workload w(MakeSymbolTable());
  w.program =
      ParseProgram(
          "tri: edge(X, Y), edge(Y, Z), edge(Z, X) -> +tri(X, Y, Z).\n",
          w.symbols)
          .value();
  Rand rng(seed);
  for (int i = 0; i < num_edges; ++i) {
    int64_t a = static_cast<int64_t>(rng.Next() % num_nodes);
    int64_t b = static_cast<int64_t>(rng.Next() % num_nodes);
    w.database.Insert(IntAtom2(w.symbols, "edge", a, b));
  }
  w.description = StrFormat("triangle query, %d nodes / %d edges", num_nodes,
                            num_edges);
  return w;
}

/// Length-3 chain join over one edge relation, closed into a 4-cycle:
/// edge(X,Y) ⋈ edge(Y,Z) ⋈ edge(Z,W) with edge(W,X) as the closing
/// filter. Like the triangle, the cyclic join graph is order-proof, but
/// the chain is one join deeper so the intermediate batch is |E|·d²
/// rows — the stress test for batch materialization and duplicate-key
/// merge resolution.
Workload MakeChainWorkload(int num_nodes, int num_edges, uint64_t seed) {
  Workload w(MakeSymbolTable());
  w.program = ParseProgram(
                  "ring: edge(X, Y), edge(Y, Z), edge(Z, W), edge(W, X) "
                  "-> +ring(X, Z).\n",
                  w.symbols)
                  .value();
  Rand rng(seed);
  for (int i = 0; i < num_edges; ++i) {
    int64_t a = static_cast<int64_t>(rng.Next() % num_nodes);
    int64_t b = static_cast<int64_t>(rng.Next() % num_nodes);
    w.database.Insert(IntAtom2(w.symbols, "edge", a, b));
  }
  w.description = StrFormat("4-cycle chain query, %d nodes / %d edges",
                            num_nodes, num_edges);
  return w;
}

ParkResult RunOnce(const BenchCase& bench, ExecMode exec,
                   double* elapsed_ms) {
  ParkOptions options;
  options.gamma_mode = bench.gamma_mode;
  options.exec_mode = exec;
  auto start = std::chrono::steady_clock::now();
  auto result = Park(bench.workload.program, bench.workload.database,
                     options);
  auto end = std::chrono::steady_clock::now();
  PARK_CHECK(result.ok()) << result.status().ToString();
  *elapsed_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  return std::move(*result);
}

std::vector<ConfigResult> RunCase(const BenchCase& bench, int repetitions) {
  std::vector<ConfigResult> configs;
  std::string reference_db;
  size_t reference_steps = 0;
  for (ExecMode exec : {ExecMode::kTuple, ExecMode::kBatch}) {
    ConfigResult config;
    config.exec = exec == ExecMode::kTuple ? "tuple" : "batch";
    double best = -1;
    for (int rep = 0; rep < repetitions; ++rep) {
      double ms = 0;
      ParkResult result = RunOnce(bench, exec, &ms);
      if (best < 0 || ms < best) best = ms;
      std::string db = result.database.ToString();
      if (exec == ExecMode::kTuple && rep == 0) {
        reference_db = db;
        reference_steps = result.stats.gamma_steps;
      }
      // The whole point: the executor mode must never change the result.
      PARK_CHECK(db == reference_db)
          << bench.name << ": batch database differs from tuple result";
      PARK_CHECK(result.stats.gamma_steps == reference_steps)
          << bench.name << ": batch run took a different number of steps";
      config.gamma_steps = result.stats.gamma_steps;
      config.batch_rows = result.stats.exec_batch_rows;
      config.probe_rows = result.stats.exec_probe_rows;
      config.merge_rows = result.stats.exec_merge_rows;
      config.storage_compactions = result.stats.storage_compactions;
      config.storage_segment_rows = result.stats.storage_segment_rows;
    }
    config.best_ms = best;
    config.speedup = configs.empty() ? 1.0 : configs[0].best_ms / best;
    configs.push_back(config);
    std::printf(
        "  %-20s exec=%-5s  %8.2f ms  speedup %.2fx  "
        "(%llu merge / %llu probe row(s))\n",
        bench.name.c_str(), config.exec, best, config.speedup,
        static_cast<unsigned long long>(config.merge_rows),
        static_cast<unsigned long long>(config.probe_rows));
  }
  return configs;
}

const char* ModeName(GammaMode mode) {
  switch (mode) {
    case GammaMode::kNaive: return "naive";
    case GammaMode::kDeltaFiltered: return "delta_filtered";
    case GammaMode::kSemiNaive: return "semi_naive";
  }
  return "unknown";
}

std::string ToJson(
    const std::vector<std::pair<const BenchCase*, std::vector<ConfigResult>>>&
        results,
    bool smoke) {
  JsonWriter w = bench::BeginBenchJson("park-bench-columnar-v1");
  w.Key("smoke").Bool(smoke);
  w.Key("set_identical").Bool(true);
  w.Key("cases").BeginArray();
  for (const auto& [bench, configs] : results) {
    w.BeginObject();
    w.Key("name").String(bench->name);
    w.Key("gamma_mode").String(ModeName(bench->gamma_mode));
    w.Key("configs").BeginArray();
    for (const ConfigResult& c : configs) {
      w.BeginObject();
      w.Key("exec").String(c.exec);
      w.Key("best_ms").Double(c.best_ms);
      w.Key("speedup").Double(c.speedup);
      w.Key("gamma_steps").UInt(c.gamma_steps);
      w.Key("batch_rows").UInt(c.batch_rows);
      w.Key("probe_rows").UInt(c.probe_rows);
      w.Key("merge_rows").UInt(c.merge_rows);
      w.Key("storage_compactions").UInt(c.storage_compactions);
      w.Key("storage_segment_rows").UInt(c.storage_segment_rows);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).str();
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string only_case;  // empty: run everything
  std::string out_path = "BENCH_columnar.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--case") == 0 && i + 1 < argc) {
      only_case = argv[++i];
    } else {
      out_path = argv[i];
    }
  }

  const int closure_nodes = smoke ? 48 : 192;
  const int closure_edges = smoke ? 96 : 384;
  const int skew_nodes = smoke ? 256 : 1024;
  const int skew_edges = smoke ? 2048 : 24576;
  const int chain_nodes = smoke ? 256 : 1024;
  const int chain_edges = smoke ? 1024 : 12288;
  const int payroll_employees = smoke ? 512 : 8192;
  const int repetitions = smoke ? 1 : 3;

  std::vector<BenchCase> cases;
  {
    BenchCase c{"closure",
                MakeTransitiveClosureWorkload(GraphShape::kRandom,
                                              closure_nodes, closure_edges,
                                              /*seed=*/17),
                GammaMode::kNaive};
    cases.push_back(std::move(c));
  }
  {
    BenchCase c{"skew", MakeSkewWorkload(skew_nodes, skew_edges, /*seed=*/41),
                GammaMode::kNaive};
    cases.push_back(std::move(c));
  }
  {
    BenchCase c{"chain", MakeChainWorkload(chain_nodes, chain_edges,
                                           /*seed=*/7),
                GammaMode::kNaive};
    cases.push_back(std::move(c));
  }
  {
    PayrollParams params;
    params.num_employees = payroll_employees;
    params.inactive_fraction = 0.1;
    params.seed = 23;
    BenchCase c{"payroll", MakePayrollWorkload(params),
                GammaMode::kDeltaFiltered};
    cases.push_back(std::move(c));
  }

  std::printf("bench_columnar: %u hardware thread(s)%s\n",
              std::thread::hardware_concurrency(),
              smoke ? " [smoke mode: timings meaningless]" : "");
  std::vector<std::pair<const BenchCase*, std::vector<ConfigResult>>> results;
  for (const BenchCase& bench : cases) {
    if (!only_case.empty() && bench.name != only_case) continue;
    results.emplace_back(&bench, RunCase(bench, repetitions));
  }

  if (!bench::WriteBenchJson(out_path, ToJson(results, smoke))) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace park

int main(int argc, char** argv) { return park::Main(argc, argv); }
