// Regenerates every worked example of the paper (experiment ids E1-E9 in
// DESIGN.md) and prints one row per example: the result the paper states,
// the result this implementation computes, whether they agree, and the
// wall time. E6 is expected to differ by exactly the q(a,a) the paper's
// final line dropped (see EXPERIMENTS.md).
//
//   bench_paper_examples [output.json]
//
// With an argument, the rows are also written as JSON (schema
// park-bench-paper-examples-v1, shared envelope in bench_json.h) so the
// paper-fidelity record rides the same BENCH_*.json trajectory as the
// performance benches.

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_json.h"
#include "park/park.h"

namespace park {
namespace {

struct ExampleRow {
  std::string id;
  std::string description;
  std::string paper_expected;
  std::string computed;
  std::string note;
  double micros = 0;

  bool Matches() const { return paper_expected == computed; }
};

using RunFn = std::function<std::string()>;

ExampleRow RunExample(std::string id, std::string description,
                      std::string paper_expected, std::string note,
                      const RunFn& run) {
  ExampleRow row;
  row.id = std::move(id);
  row.description = std::move(description);
  row.paper_expected = std::move(paper_expected);
  row.note = std::move(note);
  auto start = std::chrono::steady_clock::now();
  row.computed = run();
  auto end = std::chrono::steady_clock::now();
  row.micros =
      std::chrono::duration<double, std::micro>(end - start).count();
  return row;
}

std::string ParkOn(const char* rules, const char* facts,
                   PolicyPtr policy = nullptr) {
  auto symbols = MakeSymbolTable();
  auto program = ParseProgram(rules, symbols);
  if (!program.ok()) return "parse error: " + program.status().ToString();
  auto db = ParseDatabase(facts, symbols);
  if (!db.ok()) return "parse error: " + db.status().ToString();
  ParkOptions options;
  options.policy = std::move(policy);
  auto result = Park(*program, *db, options);
  if (!result.ok()) return "error: " + result.status().ToString();
  return result->database.ToString();
}

std::string ParkEca(const char* rules, const char* facts,
                    const std::vector<const char*>& updates) {
  auto symbols = MakeSymbolTable();
  auto program = ParseProgram(rules, symbols);
  if (!program.ok()) return "parse error: " + program.status().ToString();
  auto db = ParseDatabase(facts, symbols);
  if (!db.ok()) return "parse error: " + db.status().ToString();
  UpdateSet set;
  for (const char* text : updates) {
    Status status = set.AddParsed(text, symbols);
    if (!status.ok()) return "update error: " + status.ToString();
  }
  auto result = Park(*db, *program, set.updates());
  if (!result.ok()) return "error: " + result.status().ToString();
  return result->database.ToString();
}

std::string NaiveOn(const char* rules, const char* facts) {
  auto symbols = MakeSymbolTable();
  auto program = ParseProgram(rules, symbols);
  auto db = ParseDatabase(facts, symbols);
  auto result = NaiveCancelSemantics(*program, *db);
  if (!result.ok()) return "error: " + result.status().ToString();
  return result->database.ToString();
}

constexpr char kP1[] = "r1: p -> +q. r2: p -> -a. r3: q -> +a.";
constexpr char kP2[] =
    "r1: p -> +q. r2: p -> -a. r3: q -> +a. r4: !a -> +r. r5: a -> +s.";
constexpr char kP3[] =
    "r1: p -> +q. r2: p -> -q. r3: q -> +a. r4: q -> -a. r5: p -> +a.";
constexpr char kGraph[] = R"(
  r1: p(X), p(Y) -> +q(X, Y).
  r2: q(X, X) -> -q(X, X).
  r3: q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y).
)";
constexpr char kEca1[] =
    "r1: p(X) -> +q(X). r2: q(X) -> +r(X). r3: +r(X) -> -s(X).";
constexpr char kEca2[] =
    "r1: q(X, a) -> -p(X, a). r2: q(a, X) -> +r(a, X)."
    " r3: +r(X, a) -> +p(X, a).";
constexpr char kSection5[] =
    "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.";
constexpr char kCounter[] =
    "r1: a -> +b. r2: a -> +d. r3: b -> +c. r4: b -> -d. r5: c -> -b.";

PolicyPtr GraphPolicy(const std::shared_ptr<SymbolTable>& symbols) {
  SymbolId a = symbols->InternSymbol("a");
  SymbolId c = symbols->InternSymbol("c");
  return MakeLambdaPolicy(
      "paper-graph",
      [a, c](const PolicyContext&, const Conflict& conflict) -> Result<Vote> {
        const Value& x = conflict.atom.args()[0];
        const Value& y = conflict.atom.args()[1];
        if (x == y) return Vote::kDelete;
        bool ac = (x == Value::Symbol(a) && y == Value::Symbol(c)) ||
                  (x == Value::Symbol(c) && y == Value::Symbol(a));
        return ac ? Vote::kDelete : Vote::kInsert;
      });
}

}  // namespace
}  // namespace park

int main(int argc, char** argv) {
  using namespace park;  // NOLINT — bench driver
  std::vector<ExampleRow> rows;

  rows.push_back(RunExample(
      "E1", "§4.1 P1, inertia", "{p, q}", "",
      [] { return ParkOn(kP1, "p."); }));

  rows.push_back(RunExample(
      "E2", "§4.1 P2, inertia (PARK)", "{p, q, r}", "",
      [] { return ParkOn(kP2, "p."); }));

  rows.push_back(RunExample(
      "E2b", "§4.1 P2, naive strawman", "{p, q, r, s}",
      "paper shows this result to be WRONG",
      [] { return NaiveOn(kP2, "p."); }));

  rows.push_back(RunExample(
      "E3", "§4.1 P3, inertia (false conflict)", "{a, p}", "",
      [] { return ParkOn(kP3, "p."); }));

  rows.push_back(RunExample(
      "E4", "§4.2 graph, custom SELECT",
      "{p(a), p(b), p(c), q(a, b), q(b, a), q(b, c), q(c, b)}", "",
      [] {
        auto symbols = MakeSymbolTable();
        auto program = ParseProgram(kGraph, symbols);
        auto db = ParseDatabase("p(a). p(b). p(c).", symbols);
        ParkOptions options;
        options.policy = GraphPolicy(symbols);
        auto result = Park(*program, *db, options);
        return result.ok() ? result->database.ToString()
                           : result.status().ToString();
      }));

  rows.push_back(RunExample(
      "E5", "§4.3 ECA ex.1, U={+q(b)}",
      "{p(a), q(a), q(b), r(a), r(b)}", "",
      [] { return ParkEca(kEca1, "p(a). s(a). s(b).", {"+q(b)"}); }));

  rows.push_back(RunExample(
      "E6", "§4.3 ECA ex.2, U={+q(a,a)}, inertia",
      "{p(a, a), p(a, b), p(a, c), q(a, a), r(a, a)}",
      "paper's final line omits q(a, a) — typo per its own I5 listing",
      [] {
        return ParkEca(kEca2, "p(a, a). p(a, b). p(a, c).", {"+q(a, a)"});
      }));

  rows.push_back(RunExample(
      "E7", "§5 rules, inertia", "{a, b, p}", "blocked must be {r2, r5}",
      [] { return ParkOn(kSection5, "p."); }));

  rows.push_back(RunExample(
      "E8", "§5 counterintuitive chain, inertia", "{a}",
      "paper: inertia gives {a}, not the intuitive {a, d}",
      [] { return ParkOn(kCounter, "a."); }));

  rows.push_back(RunExample(
      "E9", "§5 rules, rule priority", "{a, b, p, q}",
      "blocked must be {r2, r4}",
      [] { return ParkOn(kSection5, "p.", MakeRulePriorityPolicy()); }));

  std::printf("%-4s %-38s %-7s %9s  %s\n", "id", "description", "match",
              "time_us", "computed");
  std::printf("%s\n", std::string(110, '-').c_str());
  int mismatches = 0;
  for (const ExampleRow& row : rows) {
    bool ok = row.Matches();
    if (!ok) ++mismatches;
    std::printf("%-4s %-38s %-7s %9.1f  %s\n", row.id.c_str(),
                row.description.c_str(), ok ? "yes" : "NO", row.micros,
                row.computed.c_str());
    if (!ok) {
      std::printf("     paper: %s\n", row.paper_expected.c_str());
    }
    if (!row.note.empty()) {
      std::printf("     note: %s\n", row.note.c_str());
    }
  }
  std::printf("%s\n%d/%zu examples match the paper\n",
              std::string(110, '-').c_str(),
              static_cast<int>(rows.size()) - mismatches, rows.size());

  if (argc > 1) {
    JsonWriter w = bench::BeginBenchJson("park-bench-paper-examples-v1");
    w.Key("matches").Int(static_cast<int>(rows.size()) - mismatches);
    w.Key("total").UInt(rows.size());
    w.Key("cases").BeginArray();
    for (const ExampleRow& row : rows) {
      w.BeginObject();
      w.Key("id").String(row.id);
      w.Key("description").String(row.description);
      w.Key("match").Bool(row.Matches());
      w.Key("time_us").Double(row.micros);
      w.Key("computed").String(row.computed);
      if (!row.note.empty()) w.Key("note").String(row.note);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    if (!bench::WriteBenchJson(argv[1], std::move(w).str())) return 1;
    std::printf("wrote %s\n", argv[1]);
  }
  return mismatches == 0 ? 0 : 1;
}
