// C1 — polynomial tractability in |D| (paper §3 "Polynomial Tractability"
// and the complexity argument of §4.2): PARK runtime as the database
// grows, program fixed. Series: random-graph transitive closure (recursive,
// conflict-free) and the payroll cleanup rules (non-recursive, with
// negation). Counters report derived marks and Γ steps so the growth rate
// can be read off directly.

#include <benchmark/benchmark.h>

#include "park/park.h"
#include "workload/graph_gen.h"
#include "workload/payroll_gen.h"

namespace park {
namespace {

void BM_ClosureRandomGraph(benchmark::State& state) {
  int edges = static_cast<int>(state.range(0));
  int nodes = edges / 4;
  Workload w = MakeTransitiveClosureWorkload(GraphShape::kRandom, nodes,
                                             edges, /*seed=*/17);
  ParkStats last;
  for (auto _ : state) {
    auto result = Park(w.program, w.database);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    last = result->stats;
    benchmark::DoNotOptimize(result->database);
  }
  state.counters["db_atoms"] = static_cast<double>(w.database.size());
  state.counters["derived"] = static_cast<double>(last.derived_marks);
  state.counters["gamma_steps"] = static_cast<double>(last.gamma_steps);
}
BENCHMARK(BM_ClosureRandomGraph)->RangeMultiplier(2)->Range(64, 1024)
    ->Unit(benchmark::kMillisecond);

void BM_PayrollCleanup(benchmark::State& state) {
  PayrollParams params;
  params.num_employees = static_cast<int>(state.range(0));
  params.inactive_fraction = 0.1;
  params.seed = 23;
  Workload w = MakePayrollWorkload(params);
  ParkStats last;
  for (auto _ : state) {
    auto result = Park(w.program, w.database);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    last = result->stats;
    benchmark::DoNotOptimize(result->database);
  }
  state.counters["db_atoms"] = static_cast<double>(w.database.size());
  state.counters["derived"] = static_cast<double>(last.derived_marks);
}
BENCHMARK(BM_PayrollCleanup)->RangeMultiplier(4)->Range(64, 16384)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace park

BENCHMARK_MAIN();
