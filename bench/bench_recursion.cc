// C8 — recursive active rules (paper §3 "Basic Inference Engine ...
// powerful enough to deal with recursive active rules"): transitive
// closure over graph families with different closure depths, plus a
// recursion/conflict interaction where the closure feeds a conflicting
// rule pair.

#include <benchmark/benchmark.h>

#include "park/park.h"
#include "util/string_util.h"
#include "workload/graph_gen.h"

namespace park {
namespace {

void BM_ClosurePath(benchmark::State& state) {
  // Path graphs maximize fixpoint depth: n-1 Γ rounds.
  Workload w = MakeTransitiveClosureWorkload(
      GraphShape::kPath, static_cast<int>(state.range(0)), 0, 1);
  ParkStats last;
  for (auto _ : state) {
    auto result = Park(w.program, w.database);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    last = result->stats;
    benchmark::DoNotOptimize(result->database);
  }
  state.counters["gamma_steps"] = static_cast<double>(last.gamma_steps);
  state.counters["derived"] = static_cast<double>(last.derived_marks);
}
BENCHMARK(BM_ClosurePath)->RangeMultiplier(2)->Range(8, 128)
    ->Unit(benchmark::kMillisecond);

void BM_ClosureCycle(benchmark::State& state) {
  Workload w = MakeTransitiveClosureWorkload(
      GraphShape::kCycle, static_cast<int>(state.range(0)), 0, 1);
  for (auto _ : state) {
    auto result = Park(w.program, w.database);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result->database);
  }
}
BENCHMARK(BM_ClosureCycle)->RangeMultiplier(2)->Range(8, 128)
    ->Unit(benchmark::kMillisecond);

/// Recursion feeding a conflict: close a path graph, then a pair of rules
/// fights over a summary atom derived from the deepest path. The restart
/// must replay the whole recursive closure.
void BM_RecursionThenConflict(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto symbols = MakeSymbolTable();
  std::string rules =
      "edge(X, Y) -> +path(X, Y)."
      " path(X, Y), edge(Y, Z) -> +path(X, Z).";
  rules += StrFormat(" path(0, %d) -> +deep. path(0, %d) -> -deep.", n - 1,
                     n - 1);
  std::string facts;
  for (int i = 0; i + 1 < n; ++i) {
    facts += StrFormat("edge(%d, %d). ", i, i + 1);
  }
  auto program = ParseProgram(rules, symbols).value();
  auto db = ParseDatabase(facts, symbols).value();
  ParkStats last;
  for (auto _ : state) {
    auto result = Park(program, db);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    last = result->stats;
    benchmark::DoNotOptimize(result->database);
  }
  state.counters["restarts"] = static_cast<double>(last.restarts);
  state.counters["gamma_steps"] = static_cast<double>(last.gamma_steps);
}
BENCHMARK(BM_RecursionThenConflict)->RangeMultiplier(2)->Range(8, 64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace park

BENCHMARK_MAIN();
