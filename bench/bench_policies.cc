// C5/C6 — the policy matrix (paper §3 "Independence from Conflict
// Resolution Policies", §5 efficiency discussion): one engine, different
// SELECT strategies over the same conflict-heavy workload.
//
// Expected shape per §5: inertia / priority / random / constant policies
// are O(1) per conflict and indistinguishable in cost; specificity does a
// per-conflict scan of the involved rule bodies (here still cheap, as the
// paper concedes simple definitions exist); voting costs the sum of its
// critics; the interactive policy is excluded (it costs a human).

#include <benchmark/benchmark.h>

#include "park/park.h"
#include "workload/conflict_gen.h"

namespace park {
namespace {

constexpr int kPairs = 512;
constexpr double kFraction = 0.5;

void RunWithPolicy(benchmark::State& state, const PolicyPtr& policy) {
  Workload w = MakeConflictPairsWorkload(kPairs, kFraction, /*seed=*/37);
  ParkStats last;
  for (auto _ : state) {
    ParkOptions options;
    options.policy = policy;
    auto result = Park(w.program, w.database, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    last = result->stats;
    benchmark::DoNotOptimize(result->database);
  }
  state.counters["conflicts"] =
      static_cast<double>(last.conflicts_resolved);
  state.counters["select_calls"] =
      static_cast<double>(last.policy_invocations);
}

void BM_PolicyInertia(benchmark::State& state) {
  RunWithPolicy(state, MakeInertiaPolicy());
}
void BM_PolicyRulePriority(benchmark::State& state) {
  RunWithPolicy(state, MakeRulePriorityPolicy());
}
void BM_PolicySpecificityWithFallback(benchmark::State& state) {
  RunWithPolicy(state, MakeCompositePolicy(
                           {MakeSpecificityPolicy(), MakeInertiaPolicy()}));
}
void BM_PolicyRandom(benchmark::State& state) {
  RunWithPolicy(state, MakeRandomPolicy(2024));
}
void BM_PolicyAlwaysInsert(benchmark::State& state) {
  RunWithPolicy(state, MakeAlwaysInsertPolicy());
}
void BM_PolicyVotingThreeCritics(benchmark::State& state) {
  RunWithPolicy(state,
                MakeVotingPolicy({MakeInertiaPolicy(),
                                  MakeRulePriorityPolicy(),
                                  MakeAlwaysDeletePolicy()}));
}
void BM_PolicyVotingSevenCritics(benchmark::State& state) {
  std::vector<PolicyPtr> critics;
  for (int i = 0; i < 7; ++i) critics.push_back(MakeRandomPolicy(100 + i));
  RunWithPolicy(state, MakeVotingPolicy(std::move(critics)));
}

BENCHMARK(BM_PolicyInertia)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PolicyRulePriority)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PolicySpecificityWithFallback)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PolicyRandom)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PolicyAlwaysInsert)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PolicyVotingThreeCritics)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PolicyVotingSevenCritics)->Unit(benchmark::kMillisecond);

// C5 outcome divergence: the same program under different policies ends
// in different states — policy plugs in without touching the engine.
void BM_PolicyOutcomeMatrix(benchmark::State& state) {
  constexpr char kProgram[] =
      "r1: p -> +a. r2: p -> +q. r3: a -> +b. r4: a -> -q. r5: b -> +q.";
  auto symbols = MakeSymbolTable();
  auto program = ParseProgram(kProgram, symbols).value();
  auto db = ParseDatabase("p.", symbols).value();
  std::string inertia_result;
  std::string priority_result;
  for (auto _ : state) {
    ParkOptions inertia;
    inertia_result = Park(program, db, inertia)->database.ToString();
    ParkOptions priority;
    priority.policy = MakeRulePriorityPolicy();
    priority_result = Park(program, db, priority)->database.ToString();
    benchmark::DoNotOptimize(inertia_result);
  }
  // {a, b, p} vs {a, b, p, q}: 1.0 iff the §5 divergence reproduces.
  state.counters["diverges"] =
      (inertia_result == "{a, b, p}" && priority_result == "{a, b, p, q}")
          ? 1.0
          : 0.0;
}
BENCHMARK(BM_PolicyOutcomeMatrix)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace park

BENCHMARK_MAIN();
