// Shared JSON envelope for the self-managed benchmark binaries
// (bench_parallel, bench_paper_examples — the ones not built on
// google-benchmark's --benchmark_out). Every BENCH_*.json they write
// starts with the same two fields so downstream tooling
// (tools/check_stats_schema.py, trajectory scripts) can dispatch on one
// schema tag instead of sniffing shapes:
//
//   {
//     "schema": "park-bench-parallel-v1",
//     "hardware_concurrency": 8,
//     "cpu_model": "AMD EPYC 7B13",
//     "build_type": "release",
//     ...benchmark-specific fields...
//   }
//
// The machine fields make a stored BENCH_*.json self-describing: a
// number benched on a 1-core debug container is not comparable to one
// from an 8-core release box, and the envelope says which one you have.

#ifndef PARK_BENCH_BENCH_JSON_H_
#define PARK_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "util/json.h"

namespace park {
namespace bench {

/// First "model name" line of /proc/cpuinfo, or "unknown" where that
/// pseudo-file does not exist (non-Linux hosts).
inline std::string CpuModelName() {
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f == nullptr) return "unknown";
  std::string model = "unknown";
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "model name", 10) != 0) continue;
    const char* colon = std::strchr(line, ':');
    if (colon == nullptr) break;
    model = colon + 1;
    // Trim the leading space and trailing newline.
    while (!model.empty() && (model.front() == ' ' || model.front() == '\t')) {
      model.erase(model.begin());
    }
    while (!model.empty() && (model.back() == '\n' || model.back() == '\r')) {
      model.pop_back();
    }
    break;
  }
  std::fclose(f);
  return model;
}

/// Opens the envelope object and writes the common fields. The caller
/// appends its own fields and closes the object:
///
///   JsonWriter w = bench::BeginBenchJson("park-bench-parallel-v1");
///   w.Key("cases").BeginArray(); ... w.EndArray();
///   w.EndObject();
///   bench::WriteBenchJson(path, std::move(w).str());
inline JsonWriter BeginBenchJson(const char* schema) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(schema);
  w.Key("hardware_concurrency").UInt(std::thread::hardware_concurrency());
  w.Key("cpu_model").String(CpuModelName());
#ifdef NDEBUG
  w.Key("build_type").String("release");
#else
  w.Key("build_type").String("debug");
#endif
  return w;
}

/// Writes `json` plus a trailing newline to `path`. Returns false (with
/// a message on stderr) if the file cannot be written.
inline bool WriteBenchJson(const std::string& path, const std::string& json) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  bool ok = std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "error closing %s\n", path.c_str());
  return ok;
}

}  // namespace bench
}  // namespace park

#endif  // PARK_BENCH_BENCH_JSON_H_
