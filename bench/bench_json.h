// Shared JSON envelope for the self-managed benchmark binaries
// (bench_parallel, bench_paper_examples — the ones not built on
// google-benchmark's --benchmark_out). Every BENCH_*.json they write
// starts with the same two fields so downstream tooling
// (tools/check_stats_schema.py, trajectory scripts) can dispatch on one
// schema tag instead of sniffing shapes:
//
//   {
//     "schema": "park-bench-parallel-v1",
//     "hardware_concurrency": 8,
//     ...benchmark-specific fields...
//   }

#ifndef PARK_BENCH_BENCH_JSON_H_
#define PARK_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <string>
#include <thread>

#include "util/json.h"

namespace park {
namespace bench {

/// Opens the envelope object and writes the common fields. The caller
/// appends its own fields and closes the object:
///
///   JsonWriter w = bench::BeginBenchJson("park-bench-parallel-v1");
///   w.Key("cases").BeginArray(); ... w.EndArray();
///   w.EndObject();
///   bench::WriteBenchJson(path, std::move(w).str());
inline JsonWriter BeginBenchJson(const char* schema) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(schema);
  w.Key("hardware_concurrency").UInt(std::thread::hardware_concurrency());
  return w;
}

/// Writes `json` plus a trailing newline to `path`. Returns false (with
/// a message on stderr) if the file cannot be written.
inline bool WriteBenchJson(const std::string& path, const std::string& json) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  bool ok = std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "error closing %s\n", path.c_str());
  return ok;
}

}  // namespace bench
}  // namespace park

#endif  // PARK_BENCH_BENCH_JSON_H_
