// INC — incremental fixpoint maintenance across commits: the same
// multi-commit script replayed against two ActiveDatabases, one with
// ParkOptions::maintenance_mode = kIncremental and one with it off, with
// an in-bench bit-identity check (every commit's inserted/deleted diff
// and the final stored instance must match exactly, or the bench
// aborts). Emits BENCH_incremental.json with per-config total commit
// times, the from-scratch/incremental speedup, and the maintenance
// counters (maintained_commits / atoms_rederived / cone_rules) that
// explain it: a small-|U| commit's seeded closure touches its cone
// only, while the from-scratch evaluator re-derives the whole fixpoint
// and diffs the whole database (docs/INCREMENTAL.md).
//
//   bench_incremental [--smoke] [output.json]
//   (default: BENCH_incremental.json)
//
// --smoke shrinks both workloads and skips the speedup gate so CI can
// exercise the full path (including the JSON schema and, at threads=2,
// the maintainer-owned parallel Γ pool for TSan) in a second; the
// timings of a smoke run are meaningless and the JSON says so.
//
// Non-smoke runs gate on EVERY measured config of both cases (kilorule
// and transitive closure, threads 1 and — when the host is wide
// enough — 4): incremental must be >= 3x faster than from-scratch, or
// the bench exits non-zero. The gate is honest by construction: the
// bench also checks that every scripted commit was actually served by
// the maintainer (maintained_commits == commits, zero fallbacks), so a
// silently-falling-back maintainer cannot "pass" at 1.0x parity.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "eca/active_database.h"
#include "park/park.h"
#include "util/string_util.h"

namespace park {
namespace {

/// One benchmark case: a program, a bulk-loaded base instance, and a
/// script of small commits (each a list of "+p(a)"-style updates). Both
/// cases are statically eligible (insert-only heads, purely positive
/// bodies) and every scripted commit passes the dynamic gates, so with
/// maintenance on the entire timed region runs the seeded closure.
struct BenchCase {
  std::string name;
  std::string rules;
  std::string facts;
  std::vector<std::vector<std::string>> script;
};

/// The kilorule shape (workload/kilorule_gen.h): `chains` independent
/// derivation chains of `levels` rules each, plus the two-rule cq/cs
/// SCC. Each commit drops one fresh fact into a rotating chain's
/// level-0 predicate: the cone is that one chain, while a from-scratch
/// run re-walks every chain for every fact loaded so far.
BenchCase MakeKiloruleCase(int chains, int levels, int facts, int commits) {
  BenchCase c;
  c.name = StrFormat("kilorule_%dx%d", chains, levels);
  for (int chain = 0; chain < chains; ++chain) {
    for (int level = 0; level < levels; ++level) {
      c.rules += StrFormat("r%d_%d: p%d_%d(X) -> +p%d_%d(X).\n", chain,
                           level, chain, level, chain, level + 1);
    }
  }
  c.rules += "scc_q: cq(X) -> +cs(X).\nscc_s: cs(X) -> +cq(X).\n";
  for (int chain = 0; chain < chains; ++chain) {
    for (int fact = 0; fact < facts; ++fact) {
      c.facts += StrFormat("p%d_0(seed%d).\n", chain, fact);
    }
  }
  for (int i = 0; i < commits; ++i) {
    c.script.push_back({StrFormat("+p%d_0(f%d)", i % chains, i)});
  }
  return c;
}

/// Recursive transitive closure over a path graph v0 -> ... -> v{n-1}
/// (closure has maximal depth, |t| = n(n-1)/2). Each commit grafts a
/// fresh node onto a vertex near the tail, so the cone is a handful of
/// new t atoms while a from-scratch run re-derives the whole quadratic
/// closure and diffs it against the stored instance.
BenchCase MakeClosureCase(int nodes, int commits) {
  BenchCase c;
  c.name = StrFormat("closure_path_%d", nodes);
  c.rules =
      "base: e(X, Y) -> +t(X, Y).\n"
      "step: t(X, Z), e(Z, Y) -> +t(X, Y).\n";
  for (int i = 0; i + 1 < nodes; ++i) {
    c.facts += StrFormat("e(v%d, v%d).\n", i, i + 1);
  }
  const int graft_at = nodes > 4 ? nodes - 4 : 0;
  for (int i = 0; i < commits; ++i) {
    c.script.push_back({StrFormat("+e(f%d, v%d)", i, graft_at)});
  }
  return c;
}

struct ScriptRun {
  double total_ms = 0;  // sum of Commit() wall times, nothing else
  std::vector<std::vector<std::string>> inserted;
  std::vector<std::vector<std::string>> deleted;
  std::string final_database;
  uint64_t maintained_commits = 0;
  uint64_t fallbacks = 0;
  uint64_t atoms_rederived = 0;
  uint64_t atoms_overdeleted = 0;
  uint64_t cone_rules = 0;  // of the last maintained commit
};

/// Replays the case's script against a fresh in-memory ActiveDatabase.
/// Setup and Stabilize (which, with maintenance on, is the full commit
/// that establishes the rule-stability invariant) stay outside the
/// timed region; only the scripted Commit() calls are timed.
ScriptRun RunScript(const BenchCase& bench_case, MaintenanceMode maint,
                    int threads) {
  ActiveDatabase db;
  {
    Status s = db.LoadRules(bench_case.rules);
    PARK_CHECK(s.ok()) << s.ToString();
    s = db.LoadFacts(bench_case.facts);
    PARK_CHECK(s.ok()) << s.ToString();
    ParkOptions options;
    options.maintenance_mode = maint;
    options.num_threads = threads;
    s = db.Configure(options);
    PARK_CHECK(s.ok()) << s.ToString();
    CommitResult stabilized = db.Stabilize();
    PARK_CHECK(stabilized.ok()) << stabilized.status().ToString();
  }
  ScriptRun run;
  const SymbolTable& symbols = *db.symbols();
  for (const std::vector<std::string>& commit : bench_case.script) {
    Transaction tx = db.Begin();
    for (const std::string& update : commit) {
      Status s = tx.Stage(update);
      PARK_CHECK(s.ok()) << update << ": " << s.ToString();
    }
    auto start = std::chrono::steady_clock::now();
    CommitResult report = std::move(tx).Commit();
    auto end = std::chrono::steady_clock::now();
    PARK_CHECK(report.ok()) << report.status().ToString();
    run.total_ms +=
        std::chrono::duration<double, std::milli>(end - start).count();
    std::vector<std::string> ins, del;
    for (const GroundAtom& atom : report->inserted) {
      ins.push_back(atom.ToString(symbols));
    }
    for (const GroundAtom& atom : report->deleted) {
      del.push_back(atom.ToString(symbols));
    }
    run.inserted.push_back(std::move(ins));
    run.deleted.push_back(std::move(del));
    run.maintained_commits += report->stats.maint_commits;
    run.fallbacks += report->stats.maint_full_recompute_fallbacks;
    run.atoms_rederived += report->stats.maint_atoms_rederived;
    run.atoms_overdeleted += report->stats.maint_atoms_overdeleted;
    if (report->stats.maint_commits > 0) {
      run.cone_rules = report->stats.maint_cone_rules;
    }
  }
  run.final_database = db.database().ToString();
  return run;
}

struct ConfigResult {
  int threads = 1;
  double scratch_ms = 0;
  double incremental_ms = 0;
  double speedup = 1.0;  // scratch / incremental
  size_t commits = 0;
  uint64_t maintained_commits = 0;
  uint64_t fallbacks = 0;
  uint64_t atoms_rederived = 0;
  uint64_t atoms_overdeleted = 0;
  uint64_t cone_rules = 0;
};

ConfigResult RunConfig(const BenchCase& bench_case, int threads,
                       int repetitions) {
  ConfigResult config;
  config.threads = threads;
  config.commits = bench_case.script.size();
  double best_off = -1;
  double best_on = -1;
  ScriptRun off_first;
  // All from-scratch reps first, then all incremental reps (same
  // rationale as bench_scheduler: interleaving leaves each timed script
  // with the other's allocator/cache wake). The identity checks stay
  // outside the timed region — RunScript times Commit() only.
  for (int rep = 0; rep < repetitions; ++rep) {
    ScriptRun off = RunScript(bench_case, MaintenanceMode::kOff, threads);
    if (best_off < 0 || off.total_ms < best_off) best_off = off.total_ms;
    if (rep == 0) off_first = std::move(off);
  }
  for (int rep = 0; rep < repetitions; ++rep) {
    ScriptRun on =
        RunScript(bench_case, MaintenanceMode::kIncremental, threads);
    if (best_on < 0 || on.total_ms < best_on) best_on = on.total_ms;
    // The whole point: maintenance must be bit-identical, every run —
    // the per-commit diffs AND the final stored instance.
    PARK_CHECK(on.inserted == off_first.inserted &&
               on.deleted == off_first.deleted)
        << bench_case.name << "@" << threads
        << ": incremental commit diffs differ from the from-scratch runs";
    PARK_CHECK(on.final_database == off_first.final_database)
        << bench_case.name << "@" << threads
        << ": incremental final database differs from from-scratch";
    // Gate integrity: every scripted commit must have been served by the
    // maintainer, else the "speedup" would be measuring the fallback
    // path against itself.
    PARK_CHECK(on.maintained_commits == bench_case.script.size() &&
               on.fallbacks == 0)
        << bench_case.name << "@" << threads << ": only "
        << on.maintained_commits << "/" << bench_case.script.size()
        << " commits maintained (" << on.fallbacks << " fallbacks)";
    config.maintained_commits = on.maintained_commits;
    config.fallbacks = on.fallbacks;
    config.atoms_rederived = on.atoms_rederived;
    config.atoms_overdeleted = on.atoms_overdeleted;
    config.cone_rules = on.cone_rules;
  }
  config.scratch_ms = best_off;
  config.incremental_ms = best_on;
  config.speedup = best_on > 0 ? best_off / best_on : 1.0;
  std::printf(
      "  %-18s threads=%d  scratch %8.2f ms  incremental %8.2f ms  "
      "speedup %6.2fx  (%zu commits, %llu rederived, cone %llu rules)\n",
      bench_case.name.c_str(), threads, best_off, best_on, config.speedup,
      config.commits,
      static_cast<unsigned long long>(config.atoms_rederived),
      static_cast<unsigned long long>(config.cone_rules));
  return config;
}

struct CaseResult {
  std::string name;
  size_t rules = 0;
  std::vector<ConfigResult> configs;
};

std::string ToJson(const std::vector<CaseResult>& cases, bool smoke,
                   const char* gate) {
  JsonWriter w = bench::BeginBenchJson("park-bench-incremental-v1");
  w.Key("smoke").Bool(smoke);
  w.Key("bit_identical").Bool(true);
  // Every measured config >= 3x gate: "passed", or "skipped" in smoke
  // mode (tiny workloads, timings meaningless).
  w.Key("gate").String(gate);
  w.Key("cases").BeginArray();
  for (const CaseResult& c : cases) {
    w.BeginObject();
    w.Key("name").String(c.name);
    w.Key("rules").UInt(c.rules);
    w.Key("configs").BeginArray();
    for (const ConfigResult& r : c.configs) {
      w.BeginObject();
      w.Key("threads").Int(r.threads);
      w.Key("scratch_ms").Double(r.scratch_ms);
      w.Key("incremental_ms").Double(r.incremental_ms);
      w.Key("speedup").Double(r.speedup);
      w.Key("commits").UInt(r.commits);
      w.Key("maintained_commits").UInt(r.maintained_commits);
      w.Key("fallbacks").UInt(r.fallbacks);
      w.Key("atoms_rederived").UInt(r.atoms_rederived);
      w.Key("atoms_overdeleted").UInt(r.atoms_overdeleted);
      w.Key("cone_rules").UInt(r.cone_rules);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).str();
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_incremental.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  // Small |U| over a large maintained fixpoint is the headline shape:
  // each commit's cone is one chain (kilorule) or a few grafted closure
  // atoms, while the from-scratch evaluator re-derives everything and
  // diffs the whole instance. Smoke shrinks both an order of magnitude.
  std::vector<BenchCase> bench_cases;
  bench_cases.push_back(smoke ? MakeKiloruleCase(3, 12, 1, 6)
                              : MakeKiloruleCase(6, 192, 2, 24));
  bench_cases.push_back(smoke ? MakeClosureCase(12, 6)
                              : MakeClosureCase(96, 24));
  const int repetitions = smoke ? 1 : 3;

  std::vector<int> thread_counts{1};
  if (smoke) {
    // Smoke always includes a pooled config: it drives the
    // maintainer-owned ParallelGamma pool through the seeded closure
    // regardless of host width, which is what the CI TSan run is after.
    thread_counts.push_back(2);
  } else if (std::thread::hardware_concurrency() >= 4) {
    thread_counts.push_back(4);
  }

  std::printf("bench_incremental%s\n",
              smoke ? " [smoke mode: timings meaningless]" : "");
  std::vector<CaseResult> results;
  for (const BenchCase& bench_case : bench_cases) {
    CaseResult result;
    result.name = bench_case.name;
    {
      // Rule count for the JSON: parse once, outside any timing.
      ActiveDatabase db;
      Status s = db.LoadRules(bench_case.rules);
      PARK_CHECK(s.ok()) << s.ToString();
      result.rules = db.program().size();
    }
    for (int threads : thread_counts) {
      result.configs.push_back(RunConfig(bench_case, threads, repetitions));
    }
    results.push_back(std::move(result));
  }

  const char* gate = "skipped";
  if (!smoke) {
    for (const CaseResult& c : results) {
      for (const ConfigResult& r : c.configs) {
        if (r.speedup < 3.0) {
          std::fprintf(stderr,
                       "REGRESSION: %s@%d incremental speedup %.2fx "
                       "(want >= 3x)\n",
                       c.name.c_str(), r.threads, r.speedup);
          return 1;
        }
      }
    }
    gate = "passed";
  }

  if (!bench::WriteBenchJson(out_path, ToJson(results, smoke, gate))) {
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace park

int main(int argc, char** argv) { return park::Main(argc, argv); }
