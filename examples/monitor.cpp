// Monitor: a critical-system scenario in the spirit of the paper's §5
// discussion — "in databases that monitor critical systems (e.g. power
// plants, machine tools, etc.), the interactive conflict resolution scheme
// is perhaps the most appropriate strategy".
//
// Sensors raise alarms; one rule wants to trip the breaker on overheat,
// another wants to keep it closed while the backup generator is offline.
// The conflicting commands are resolved three ways:
//   1. a voting panel of critics (the paper's voting scheme),
//   2. rule priority,
//   3. interactively — scripted here through a string stream so the
//      example runs unattended; swap in std::cin for a real console.

#include <cstdio>
#include <iostream>
#include <sstream>

#include "park/park.h"

namespace {

constexpr char kRules[] = R"(
  trip:  overheat(X), breaker(X) -> -breaker(X).
  hold:  backup_offline, breaker(X) -> +breaker(X).
  log1:  -breaker(X) -> +event(X, tripped).
  alarm: overheat(X), !acked(X) -> +alarm(X).
)";

constexpr char kFacts[] = R"(
  breaker(line1). breaker(line2).
  overheat(line1).
  backup_offline.
)";

int Run(const char* label, park::PolicyPtr policy) {
  auto symbols = park::MakeSymbolTable();
  auto program = park::ParseProgram(kRules, symbols);
  auto db = park::ParseDatabase(kFacts, symbols);
  if (!program.ok() || !db.ok()) {
    std::fprintf(stderr, "parse error\n");
    return 1;
  }
  park::ParkOptions options;
  options.policy = std::move(policy);
  std::printf("%s\n", label);
  std::fflush(stdout);
  auto result = park::Park(*program, *db, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", label,
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("  -> %s\n", result->database.ToString().c_str());
  return 0;
}

}  // namespace

int main() {
  std::printf(
      "Conflict: `trip` wants -breaker(line1), `hold` wants "
      "+breaker(line1).\n\n");

  // 1. Voting: three critics — a safety-first critic (always trip = let
  //    the deletion through), an availability critic (keep power = keep
  //    the breaker closed), and inertia as the swing vote. breaker(line1)
  //    is in D, so inertia votes insert and availability wins 2:1.
  park::PolicyPtr availability = park::MakeAlwaysInsertPolicy();
  park::PolicyPtr safety_first = park::MakeAlwaysDeletePolicy();
  if (Run("voting panel:", park::MakeVotingPolicy(
                               {safety_first, availability,
                                park::MakeInertiaPolicy()})) != 0) {
    return 1;
  }

  // 2. Rule priority: `trip` is declared before `hold`, so `hold` has the
  //    higher default priority and the breaker stays closed; annotate
  //    [prio=...] in the rule text to flip this.
  if (Run("rule priority:", park::MakeRulePriorityPolicy()) != 0) return 1;

  // 3. Interactive: the operator is asked. The scripted operator answers
  //    "d" — trip the breaker; the trip event is then logged by `log1`.
  std::istringstream operator_answers("d\n");
  if (Run("interactive (says d):",
          park::MakeStreamInteractivePolicy(operator_answers,
                                            std::cout)) != 0) {
    return 1;
  }
  return 0;
}
