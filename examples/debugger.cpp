// Debugger: drive the PARK fixpoint one Δ transition at a time with
// ParkStepper, printing the live bi-structure ⟨B, I⟩ after every step —
// the paper's Theorem 4.1 (Δ is growing) made visible. Runs the §5
// example under the principle of inertia.

#include <cstdio>

#include "park/park.h"

int main() {
  auto symbols = park::MakeSymbolTable();
  auto program = park::ParseProgram(R"(
    r1: p -> +a.
    r2: p -> +q.
    r3: a -> +b.
    r4: a -> -q.
    r5: b -> +q.
  )", symbols);
  auto db = park::ParseDatabase("p.", symbols);
  if (!program.ok() || !db.ok()) {
    std::fprintf(stderr, "parse error\n");
    return 1;
  }

  park::ParkStepper stepper(*program, *db);
  std::printf("start        %s\n", stepper.Snapshot().ToString().c_str());

  int step = 0;
  while (!stepper.done()) {
    auto outcome = stepper.Step();
    if (!outcome.ok()) {
      std::fprintf(stderr, "step failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    ++step;
    const char* kind = "";
    switch (outcome->kind) {
      case park::StepOutcome::Kind::kGamma:
        kind = "gamma";
        break;
      case park::StepOutcome::Kind::kResolution:
        kind = "resolve";
        break;
      case park::StepOutcome::Kind::kFixpoint:
        kind = "fixpoint";
        break;
    }
    std::printf("step %-2d %-8s %s\n", step, kind,
                stepper.Snapshot().ToString().c_str());
    for (const std::string& conflict : outcome->conflicts) {
      std::printf("        resolved: %s\n", conflict.c_str());
    }
  }

  auto final_db = stepper.Finish();
  if (!final_db.ok()) {
    std::fprintf(stderr, "%s\n", final_db.status().ToString().c_str());
    return 1;
  }
  std::printf("\nPARK(P, D) = %s\n", final_db->ToString().c_str());
  std::printf("(%zu gamma steps, %zu restarts, %zu conflicts)\n",
              stepper.stats().gamma_steps, stepper.stats().restarts,
              stepper.stats().conflicts_resolved);
  return 0;
}
