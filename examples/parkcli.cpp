// parkcli: a small command-line driver around the library.
//
//   parkcli --rules FILE --facts FILE [options]
//
// Options:
//   --rules FILE       active-rule program (required)
//   --facts FILE       initial database instance (required)
//   --update ±atom     transaction update; repeatable (e.g. --update +q(b))
//   --policy NAME      inertia (default) | priority | specificity |
//                      insert | delete | random:<seed> | interactive
//   --block-first      resolve one conflict per restart (§4.2 refinement)
//   --max-steps N      abort evaluation after N Γ steps (default 1000000)
//   --deadline-ms N    abort evaluation after N wall-clock milliseconds
//                      (cooperative: fires mid-step, exit code 3)
//   --max-memory-bytes N
//                      abort evaluation once scratch memory exceeds N
//                      bytes (exit code 4)
//   --max-derivations N
//                      abort evaluation after N derivations (exit code 4)
//   --threads N        Γ evaluation threads (default 1 = sequential;
//                      0 = one per hardware thread); results identical
//   --min-slice-size N smallest per-slice candidate count for intra-rule
//                      parallelism (default 256, min 1); results identical
//   --planner NAME     cost (default) | heuristic — how rule bodies are
//                      ordered for matching (docs/PLANNER.md). The match
//                      set is identical; derivation order may differ
//   --exec-mode NAME   tuple (default) | batch — how compiled plans are
//                      executed (docs/STORAGE.md). batch runs column
//                      batches over the relations' sorted segments with
//                      merge joins where the planner chose them; results
//                      are bit-identical to tuple mode
//   --scheduler NAME   on (default) | off — the rule dependency
//                      scheduler (docs/SCHEDULER.md): on, each Γ step
//                      selects rules via the predicate watcher index
//                      and quick-exits steps whose delta nobody
//                      watches; off, every step scans the whole
//                      program. Results are bit-identical either way
//   --maintenance NAME on | off (default) — incremental fixpoint
//                      maintenance across commits (docs/INCREMENTAL.md):
//                      on, an ActiveDatabase keeps its materialized PARK
//                      result alive between commits and serves eligible
//                      commits by a seeded closure at cost ~|U| instead
//                      of re-running from scratch; ineligible commits
//                      transparently fall back. Results are
//                      bit-identical either way. parkcli runs a single
//                      one-shot evaluation, so the flag mainly matters
//                      for the stats block ("maintenance") it surfaces
//   --stats-json FILE  write evaluation stats (park-stats-v1 JSON,
//                      ParkStats::ToJson) to FILE; "-" means stdout
//                      (the human-readable report then moves to stderr
//                      so stdout stays parseable). Implies phase-timing
//                      collection.
//   --observe          stream run-observer events (TracingObserver) to
//                      stderr as evaluation progresses
//   --trace            print the full fixpoint trace
//   --provenance       print which rule instances derived each change
//   --explain          print the parsed program and analysis to stdout,
//                      and each rule's chosen plan — literal order, probe
//                      column per literal, estimated cardinalities — to
//                      stderr before the run (replans during the run
//                      stream through --observe)
//   --serve-demo       self-contained tour of the concurrent Session
//                      front-end (docs/SERVING.md): writer threads
//                      group-committing while reader threads query
//                      pinned snapshots; prints the serving counters.
//                      Ignores every other flag
//
// Exit status — scripts can branch on WHY a run stopped:
//   0  success
//   1  generic error (bad input files, evaluation errors not below)
//   2  usage error (unknown/malformed flags, missing --rules/--facts)
//   3  deadline exceeded (--deadline-ms)
//   4  resource exhausted (--max-memory-bytes / --max-derivations /
//      --max-steps budgets)
//   5  data loss (corrupt durable state)
//   6  transient I/O failure survived past the retry budget
//   7  cancelled

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/matcher.h"
#include "util/string_util.h"
#include "park/park.h"

namespace {

park::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return park::NotFoundError("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

park::Result<park::PolicyPtr> MakePolicy(const std::string& name) {
  if (name == "inertia") return park::MakeInertiaPolicy();
  if (name == "priority") return park::MakeRulePriorityPolicy();
  if (name == "specificity") {
    // Specificity is partial; fall back to inertia on ties.
    return park::MakeCompositePolicy(
        {park::MakeSpecificityPolicy(), park::MakeInertiaPolicy()});
  }
  if (name == "insert") return park::MakeAlwaysInsertPolicy();
  if (name == "delete") return park::MakeAlwaysDeletePolicy();
  if (name.rfind("random:", 0) == 0) {
    auto seed = park::ParseInt64(name.substr(7));
    if (!seed.has_value()) {
      return park::InvalidArgumentError("bad seed in --policy " + name);
    }
    return park::MakeRandomPolicy(static_cast<uint64_t>(*seed));
  }
  if (name == "interactive") {
    return park::MakeStreamInteractivePolicy(std::cin, std::cout);
  }
  return park::InvalidArgumentError(
      "unknown policy '" + name +
      "' (inertia|priority|specificity|insert|delete|random:<seed>|"
      "interactive)");
}

/// The --explain dump. Program text and analysis go to stdout; the plan
/// dump goes to STDERR (like --observe's live replan lines) so piping the
/// result leaves stdout clean. Plans are compiled against the initial
/// database's statistics — the same plans the evaluation starts with;
/// drift replans during the run surface via --observe.
void PrintExplain(const park::Program& program, const park::Database& db,
                  park::PlannerMode planner_mode) {
  std::printf("program (%zu rule(s)):\n", program.size());
  std::printf("%s", park::ProgramToString(program).c_str());
  park::ProgramAnalysis analysis = park::AnalyzeProgram(program);
  std::printf("\nanalysis:\n");
  std::printf("  recursive:        %s\n",
              analysis.is_recursive ? "yes" : "no");
  std::printf("  uses ECA events:  %s\n",
              analysis.uses_events ? "yes" : "no");
  std::printf("  max variables:    %d\n", analysis.max_rule_variables);
  std::printf("  conflict-capable predicates:");
  if (analysis.potentially_conflicting_predicates.empty()) {
    std::printf(" none");
  }
  for (park::PredicateId pred :
       analysis.potentially_conflicting_predicates) {
    std::printf(" %s", program.symbols()->PredicateName(pred).c_str());
  }
  std::printf("\n  conflict-capable rule pairs:");
  if (analysis.potentially_conflicting_rule_pairs.empty()) {
    std::printf(" none");
  }
  for (const auto& [inserter, deleter] :
       analysis.potentially_conflicting_rule_pairs) {
    std::printf(" (#%d,#%d)", inserter, deleter);
  }
  std::printf("\n");
  park::IInterpretation interp(&db);
  std::fprintf(stderr, "body evaluation plans (%s):\n",
               planner_mode == park::PlannerMode::kCostBased ? "cost-based"
                                                             : "heuristic");
  for (const park::Rule& rule : program.rules()) {
    park::CompiledPlan plan =
        park::CompilePlan(rule, /*seed_index=*/-1, planner_mode, &interp);
    std::fprintf(stderr, "  %s\n",
                 park::ExplainPlanLine(park::ExplainPlan(plan)).c_str());
  }
}

/// --serve-demo: an in-memory Session with 4 writer threads committing
/// concurrently (folded by group commit) while 2 reader threads query
/// snapshot-isolated state, then a dump of the serving counters. The
/// smallest end-to-end smoke of the concurrent serving core — CI runs it
/// headless (no input files needed).
int RunServeDemo() {
  park::Session::Params params;
  params.rules = "onboard: +emp(X) -> +active(X).";
  params.max_group_size = 8;
  auto session_or = park::Session::Create(std::move(params));
  if (!session_or.ok()) {
    std::fprintf(stderr, "serve-demo: %s\n",
                 session_or.status().ToString().c_str());
    return 1;
  }
  park::Session& session = **session_or;

  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr int kCommitsPerWriter = 25;
  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kCommitsPerWriter; ++i) {
        park::Transaction tx = session.Begin();
        tx.Insert("emp", {park::StrFormat("w%d_%d", w, i)});
        auto report = std::move(tx).Commit();
        if (!report.ok()) {
          std::fprintf(stderr, "serve-demo: commit failed: %s\n",
                       report.status().ToString().c_str());
          failed.store(true);
          return;
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        park::Snapshot snap = session.Snapshot();
        auto hits = snap.Query("active(X)");
        if (!hits.ok()) {
          std::fprintf(stderr, "serve-demo: snapshot query failed: %s\n",
                       hits.status().ToString().c_str());
          failed.store(true);
          return;
        }
        reads.fetch_add(1);
        std::this_thread::yield();
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  done.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  if (failed.load()) return 1;

  park::Snapshot final_snap = session.Snapshot();
  auto active = final_snap.Query("active(X)");
  if (!active.ok() ||
      active->size() != static_cast<size_t>(kWriters * kCommitsPerWriter)) {
    std::fprintf(stderr, "serve-demo: expected %d active rows, got %zu\n",
                 kWriters * kCommitsPerWriter,
                 active.ok() ? active->size() : 0);
    return 1;
  }

  const park::ParkStats::ServingCounters stats = session.serving_stats();
  std::printf("serve-demo: %d writer(s) x %d commit(s), %d reader(s)\n",
              kWriters, kCommitsPerWriter, kReaders);
  std::printf("  active rows:        %zu\n", active->size());
  std::printf("  snapshot reads:     %llu\n",
              static_cast<unsigned long long>(reads.load()));
  std::printf("  batches:            %llu (mean size %.2f, max %llu)\n",
              static_cast<unsigned long long>(stats.batches),
              stats.batches > 0
                  ? static_cast<double>(stats.batched_txns) / stats.batches
                  : 0.0,
              static_cast<unsigned long long>(stats.max_batch_size));
  std::printf("  poisoned batches:   %llu (%llu individual retries)\n",
              static_cast<unsigned long long>(stats.poisoned_batches),
              static_cast<unsigned long long>(stats.individual_retries));
  std::printf("  snapshots opened:   %llu (%llu still pinned)\n",
              static_cast<unsigned long long>(stats.snapshots_opened),
              static_cast<unsigned long long>(stats.snapshots_pinned));
  return 0;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --rules FILE --facts FILE [--update ±atom]...\n"
               "          [--policy NAME] [--block-first] [--max-steps N]\n"
               "          [--deadline-ms N] [--threads N]\n"
               "          [--min-slice-size N] [--planner cost|heuristic]\n"
               "          [--exec-mode tuple|batch] [--scheduler on|off]\n"
               "          [--maintenance on|off] [--stats-json FILE]\n"
               "          [--max-memory-bytes N] [--max-derivations N]\n"
               "          [--observe] [--trace] [--explain]\n"
               "       %s --serve-demo\n"
               "exit codes: 0 ok, 1 error, 2 usage, 3 deadline,\n"
               "            4 resource-exhausted, 5 data-loss,\n"
               "            6 transient-io, 7 cancelled\n",
               argv0, argv0);
  return 2;
}

/// Exit code for a failed run: the governance/durability codes get
/// distinct exits so scripts can branch on WHY the run stopped.
int ExitCodeFor(const park::Status& status) {
  switch (status.code()) {
    case park::StatusCode::kDeadlineExceeded:
      return 3;
    case park::StatusCode::kResourceExhausted:
      return 4;
    case park::StatusCode::kDataLoss:
      return 5;
    case park::StatusCode::kUnavailable:
      return 6;
    case park::StatusCode::kCancelled:
      return 7;
    default:
      return 1;
  }
}

/// Parses integer flag `flag` from text `v` and range-checks it against
/// [min, max] — int64 parses that would silently narrow (e.g. a --threads
/// value overflowing int) are rejected with a clear error instead.
bool ParseIntFlag(const char* flag, const char* v, int64_t min, int64_t max,
                  int64_t* out) {
  auto parsed = park::ParseInt64(v);
  if (!parsed.has_value() || *parsed < min || *parsed > max) {
    std::fprintf(stderr,
                 "%s wants an integer in [%lld, %lld], got '%s'\n", flag,
                 static_cast<long long>(min), static_cast<long long>(max),
                 v);
    return false;
  }
  *out = *parsed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string rules_path;
  std::string facts_path;
  std::vector<std::string> update_texts;
  std::string policy_name = "inertia";
  std::string stats_json_path;
  bool block_first = false;
  bool observe = false;
  bool trace = false;
  bool explain = false;
  bool provenance = false;
  park::ParkOptions options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--rules") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      rules_path = v;
    } else if (arg == "--facts") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      facts_path = v;
    } else if (arg == "--update") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      update_texts.push_back(v);
    } else if (arg == "--policy") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      policy_name = v;
    } else if (arg == "--block-first") {
      block_first = true;
    } else if (arg == "--max-steps") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      int64_t steps = 0;
      // size_t can be narrower than int64 (32-bit hosts); bound by both.
      int64_t max = static_cast<int64_t>(
          std::min<uint64_t>(std::numeric_limits<size_t>::max(),
                             std::numeric_limits<int64_t>::max()));
      if (!ParseIntFlag("--max-steps", v, 1, max, &steps)) return 2;
      options.max_steps = static_cast<size_t>(steps);
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      int64_t deadline = 0;
      if (!ParseIntFlag("--deadline-ms", v, 1,
                        std::numeric_limits<int64_t>::max(), &deadline)) {
        return 2;
      }
      options.deadline_ms = deadline;
    } else if (arg == "--max-memory-bytes") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      int64_t bytes = 0;
      if (!ParseIntFlag("--max-memory-bytes", v, 1,
                        std::numeric_limits<int64_t>::max(), &bytes)) {
        return 2;
      }
      options.max_memory_bytes = static_cast<uint64_t>(bytes);
    } else if (arg == "--max-derivations") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      int64_t derivations = 0;
      if (!ParseIntFlag("--max-derivations", v, 1,
                        std::numeric_limits<int64_t>::max(), &derivations)) {
        return 2;
      }
      options.max_derivations = static_cast<uint64_t>(derivations);
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      int64_t threads = 0;
      if (!ParseIntFlag("--threads", v, 0,
                        std::numeric_limits<int>::max(), &threads)) {
        return 2;
      }
      options.num_threads = static_cast<int>(threads);
    } else if (arg == "--min-slice-size") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      int64_t slice = 0;
      int64_t max = static_cast<int64_t>(
          std::min<uint64_t>(std::numeric_limits<size_t>::max(),
                             std::numeric_limits<int64_t>::max()));
      if (!ParseIntFlag("--min-slice-size", v, 1, max, &slice)) return 2;
      options.min_slice_size = static_cast<size_t>(slice);
    } else if (arg == "--planner") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (std::strcmp(v, "cost") == 0) {
        options.planner_mode = park::PlannerMode::kCostBased;
      } else if (std::strcmp(v, "heuristic") == 0) {
        options.planner_mode = park::PlannerMode::kHeuristic;
      } else {
        std::fprintf(stderr,
                     "--planner wants 'cost' or 'heuristic', got '%s'\n", v);
        return 2;
      }
    } else if (arg == "--exec-mode") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (std::strcmp(v, "tuple") == 0) {
        options.exec_mode = park::ExecMode::kTuple;
      } else if (std::strcmp(v, "batch") == 0) {
        options.exec_mode = park::ExecMode::kBatch;
      } else {
        std::fprintf(stderr,
                     "--exec-mode wants 'tuple' or 'batch', got '%s'\n", v);
        return 2;
      }
    } else if (arg == "--scheduler") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (std::strcmp(v, "on") == 0) {
        options.scheduler_mode = park::SchedulerMode::kDependency;
      } else if (std::strcmp(v, "off") == 0) {
        options.scheduler_mode = park::SchedulerMode::kOff;
      } else {
        std::fprintf(stderr,
                     "--scheduler wants 'on' or 'off', got '%s'\n", v);
        return 2;
      }
    } else if (arg == "--maintenance") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      if (std::strcmp(v, "on") == 0) {
        options.maintenance_mode = park::MaintenanceMode::kIncremental;
      } else if (std::strcmp(v, "off") == 0) {
        options.maintenance_mode = park::MaintenanceMode::kOff;
      } else {
        std::fprintf(stderr,
                     "--maintenance wants 'on' or 'off', got '%s'\n", v);
        return 2;
      }
    } else if (arg == "--stats-json") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      stats_json_path = v;
    } else if (arg == "--observe") {
      observe = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--provenance") {
      provenance = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--serve-demo") {
      return RunServeDemo();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (rules_path.empty() || facts_path.empty()) return Usage(argv[0]);

  auto rules_text = ReadFile(rules_path);
  if (!rules_text.ok()) {
    std::fprintf(stderr, "%s\n", rules_text.status().ToString().c_str());
    return 1;
  }
  auto facts_text = ReadFile(facts_path);
  if (!facts_text.ok()) {
    std::fprintf(stderr, "%s\n", facts_text.status().ToString().c_str());
    return 1;
  }

  auto symbols = park::MakeSymbolTable();
  auto program = park::ParseProgram(*rules_text, symbols);
  if (!program.ok()) {
    std::fprintf(stderr, "%s: %s\n", rules_path.c_str(),
                 program.status().ToString().c_str());
    return 1;
  }
  auto db = park::ParseDatabase(*facts_text, symbols);
  if (!db.ok()) {
    std::fprintf(stderr, "%s: %s\n", facts_path.c_str(),
                 db.status().ToString().c_str());
    return 1;
  }

  if (explain) PrintExplain(*program, *db, options.planner_mode);

  park::UpdateSet updates;
  for (const std::string& text : update_texts) {
    park::Status status = updates.AddParsed(text, symbols);
    if (!status.ok()) {
      std::fprintf(stderr, "--update %s: %s\n", text.c_str(),
                   status.ToString().c_str());
      return 1;
    }
  }

  auto policy = MakePolicy(policy_name);
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
    return 1;
  }

  options.policy = *policy;
  options.trace_level =
      trace ? park::TraceLevel::kFull : park::TraceLevel::kNone;
  options.block_granularity =
      block_first ? park::BlockGranularity::kFirstConflictOnly
                  : park::BlockGranularity::kAllConflicts;
  options.record_provenance = provenance;
  options.collect_timings = !stats_json_path.empty();
  park::TracingObserver tracer(std::cerr, symbols.get());
  if (observe) options.observer = &tracer;

  {
    park::Status status = park::ValidateOptions(options);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }

  auto result = park::Park(*db, *program, updates.updates(), options);
  if (!result.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n",
                 result.status().ToString().c_str());
    return ExitCodeFor(result.status());
  }

  // `--stats-json -` reserves stdout for the JSON document; the
  // human-readable report moves to stderr so stdout stays parseable.
  std::FILE* report = stats_json_path == "-" ? stderr : stdout;
  if (trace) {
    std::fprintf(report, "trace:\n%s\n", result->trace.ToString().c_str());
  }
  std::fprintf(report, "result: %s\n",
               result->database.ToString().c_str());
  if (!result->blocked.empty()) {
    std::fprintf(report, "blocked:");
    for (const std::string& b : result->blocked) {
      std::fprintf(report, " %s", b.c_str());
    }
    std::fprintf(report, "\n");
  }
  if (provenance) {
    std::fprintf(report, "provenance:\n");
    for (const park::AtomProvenance& entry : result->provenance) {
      std::fprintf(report, "  %-24s <-", entry.atom.c_str());
      for (const std::string& g : entry.derived_by) {
        std::fprintf(report, " %s", g.c_str());
      }
      std::fprintf(report, "\n");
    }
  }
  std::fprintf(
      report,
      "stats: %zu step(s), %zu restart(s), %zu conflict(s) resolved\n",
      result->stats.gamma_steps, result->stats.restarts,
      result->stats.conflicts_resolved);
  if (!stats_json_path.empty()) {
    std::string json = result->stats.ToJson();
    json += '\n';
    if (stats_json_path == "-") {
      std::fputs(json.c_str(), stdout);
    } else {
      std::ofstream out(stats_json_path,
                        std::ios::binary | std::ios::trunc);
      out << json;
      if (!out) {
        std::fprintf(stderr, "cannot write --stats-json file: %s\n",
                     stats_json_path.c_str());
        return 1;
      }
    }
  }
  return 0;
}
