// Payroll: the paper's §2 motivating scenario as a transactional active
// database. Non-active employees lose their payroll rows (condition-action
// rule), deletions cascade to an audit table, and newly inserted employees
// are activated automatically (event-condition-action rules with +/-
// event literals).

#include <cstdio>

#include "park/park.h"

namespace {

void Show(const park::ActiveDatabase& db, const char* label) {
  std::printf("%-28s %s\n", label, db.database().ToString().c_str());
}

int Fail(const park::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  park::ActiveDatabase db;

  park::Status status = db.LoadRules(R"(
    # §2: "if a non-active employee has a record in the salary relation,
    # then this record should be deleted"
    cleanup: emp(X), !active(X), payroll(X, S) -> -payroll(X, S).

    # React to the deletion event: keep an audit trail.
    audit:   -payroll(X, S) -> +audit(X, S).

    # React to the insertion event: new employees start active.
    onboard: +emp(X) -> +active(X).
  )");
  if (!status.ok()) return Fail(status);

  // Policy choice matters here: when a transaction inserts emp(bob) AND
  // payroll(bob, _) together, `cleanup` can fire one fixpoint step before
  // `onboard`'s +active(bob) becomes visible, raising a conflict between
  // the transaction's +payroll and cleanup's -payroll. Under the default
  // inertia policy the new payroll row would lose (it is not in D);
  // rule priority sides with the transaction, because update seed rules
  // are appended after all program rules and so carry the highest default
  // priority.
  {
    park::ParkOptions options;
    options.policy = park::MakeRulePriorityPolicy();
    status = db.Configure(std::move(options));
    if (!status.ok()) return Fail(status);
  }

  status = db.LoadFacts(R"(
    emp(ada).    active(ada).    payroll(ada, 9000).
    emp(grace).  active(grace).  payroll(grace, 8000).
    emp(alan).                   payroll(alan, 7000).
  )");
  if (!status.ok()) return Fail(status);
  Show(db, "loaded (raw):");

  // Bring the instance in line with the rules: alan is not active, so his
  // payroll row goes and an audit record appears.
  auto stabilize = db.Stabilize();
  if (!stabilize.ok()) return Fail(stabilize.status());
  Show(db, "after stabilize:");

  // Transaction 1: hire bob. The +emp event activates him.
  {
    park::Transaction tx = db.Begin();
    tx.Insert("emp", {"bob"});
    tx.Insert("payroll", {"bob", "6500"});
    auto report = std::move(tx).Commit();
    if (!report.ok()) return Fail(report.status());
    Show(db, "after hiring bob:");
  }

  // Transaction 2: deactivate grace. The cleanup rule fires inside the
  // commit, and the deletion event cascades to the audit table.
  {
    park::Transaction tx = db.Begin();
    tx.Delete("active", {"grace"});
    auto report = std::move(tx).Commit();
    if (!report.ok()) return Fail(report.status());
    std::printf("  commit deleted %zu atom(s), inserted %zu\n",
                report->deleted.size(), report->inserted.size());
    Show(db, "after deactivating grace:");
  }

  // Transaction 3: a conflicting transaction — deactivate ada AND bump her
  // payroll in one go. There is no rule conflict here, but re-running the
  // same commit with a different SELECT policy is a one-liner:
  {
    park::ParkOptions options;
    options.policy = park::MakeCompositePolicy(
        {park::MakeSpecificityPolicy(), park::MakeInertiaPolicy()});
    status = db.Configure(std::move(options));
    if (!status.ok()) return Fail(status);
  }
  {
    park::Transaction tx = db.Begin();
    tx.Delete("active", {"ada"});
    auto report = std::move(tx).Commit();
    if (!report.ok()) return Fail(report.status());
    Show(db, "after deactivating ada:");
  }
  return 0;
}
