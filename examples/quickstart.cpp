// Quickstart: parse a database and a rule set, evaluate PARK(P, D) under
// the principle of inertia, and inspect the result, the trace, and the
// blocked rule instances.
//
// This is program P1 from §4.1 of the paper:
//   D = {p},  r1: p -> +q,  r2: p -> -a,  r3: q -> +a.
// Rules r2 and r3 conflict about `a`; inertia keeps `a` absent (it was
// not in D) and the result is {p, q}.

#include <cstdio>

#include "park/park.h"

int main() {
  auto symbols = park::MakeSymbolTable();

  // 1. A database instance is a set of ground facts.
  auto db = park::ParseDatabase("p.", symbols);
  if (!db.ok()) {
    std::fprintf(stderr, "facts: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // 2. An active-rule program. `+` heads insert, `-` heads delete.
  auto program = park::ParseProgram(R"(
    r1: p -> +q.
    r2: p -> -a.
    r3: q -> +a.
  )", symbols);
  if (!program.ok()) {
    std::fprintf(stderr, "rules: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  // 3. Evaluate. The default policy is the principle of inertia; ask for
  //    a full trace to see every fixpoint step.
  park::ParkOptions options;
  options.trace_level = park::TraceLevel::kFull;
  auto result = park::Park(*program, *db, options);
  if (!result.ok()) {
    std::fprintf(stderr, "park: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("input database:  %s\n", db->ToString().c_str());
  std::printf("result database: %s\n",
              result->database.ToString().c_str());

  std::printf("\nblocked rule instances:\n");
  for (const std::string& blocked : result->blocked) {
    std::printf("  %s\n", blocked.c_str());
  }

  std::printf("\nfixpoint trace:\n%s", result->trace.ToString().c_str());

  std::printf("stats: %zu gamma steps, %zu restart(s), %zu conflict(s)\n",
              result->stats.gamma_steps, result->stats.restarts,
              result->stats.conflicts_resolved);
  return 0;
}
