// Referential integrity: foreign-key maintenance with active rules — the
// classic application domain the active-database literature (and the
// paper's introduction) motivates. Orders reference customers; rules
// implement ON DELETE CASCADE for order lines, ON DELETE SET-ORPHAN
// auditing for orders, and a delete-protection policy demonstrates how an
// integrity-critical relation can be made conflict-proof.

#include <cstdio>

#include "park/park.h"

namespace {

int Fail(const park::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

void ShowQuery(const park::ActiveDatabase& db, const char* pattern) {
  auto rows = park::QueryDatabase(db.database(), pattern, db.symbols());
  if (!rows.ok()) {
    std::printf("  %s -> %s\n", pattern, rows.status().ToString().c_str());
    return;
  }
  std::printf("  %-24s ->", pattern);
  if (rows->empty()) std::printf(" (none)");
  for (const std::string& row : rows->ToStrings(*db.symbols())) {
    std::printf("  [%s]", row.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  park::ActiveDatabase db;

  park::Status status = db.LoadRules(R"(
    # ON DELETE CASCADE: customer removal takes their orders with it...
    fk_orders:  -customer(C), order(O, C) -> -order(O, C).
    # ...and order removal takes the order lines.
    fk_lines:   -order(O, C), line(L, O) -> -line(L, O).
    # Every cascaded order deletion is audited.
    audit:      -order(O, C) -> +audit(O, C).
    # Catch dangling references after bulk loads: an order whose customer
    # does not exist is dropped at the next stabilize.
    dangling:   order(O, C), !customer(C) -> -order(O, C).
  )");
  if (!status.ok()) return Fail(status);

  status = db.LoadFacts(R"(
    customer(acme). customer(zeta).
    order(o1, acme). order(o2, acme). order(o3, zeta).
    order(o9, ghost).                       # dangling on purpose
    line(l1, o1). line(l2, o1). line(l3, o3). line(l9, o9).
  )");
  if (!status.ok()) return Fail(status);

  std::printf("after bulk load:\n");
  ShowQuery(db, "order(O, C)");

  // Stabilize drops the dangling order o9 — and cascades to its line.
  auto stabilize = db.Stabilize();
  if (!stabilize.ok()) return Fail(stabilize.status());
  std::printf("\nafter stabilize (dangling o9 cascaded away):\n");
  ShowQuery(db, "order(O, C)");
  ShowQuery(db, "line(L, O)");
  ShowQuery(db, "audit(O, C)");

  // Delete a customer: both orders and their lines cascade in ONE commit.
  {
    park::Transaction tx = db.Begin();
    tx.Delete("customer", {"acme"});
    auto report = std::move(tx).Commit();
    if (!report.ok()) return Fail(report.status());
    std::printf("\ndeleting customer(acme) cascaded %zu deletion(s):\n",
                report->deleted.size());
    ShowQuery(db, "order(O, C)");
    ShowQuery(db, "line(L, O)");
    ShowQuery(db, "audit(O, C)");
  }

  // Protect the audit trail: combine a delete-protection policy with the
  // default inertia fallback, then try to purge audit rows from a rule.
  status = db.LoadRules("purge: audit(O, C) -> -audit(O, C).");
  if (!status.ok()) return Fail(status);
  // A conflicting pro-audit rule keeps re-asserting rows; without
  // protection, inertia would side with deletion for rows not in D.
  status = db.LoadRules("keep: audit(O, C) -> +audit(O, C).");
  if (!status.ok()) return Fail(status);
  {
    park::ParkOptions options;
    options.policy = park::MakeCompositePolicy(
        {park::MakeProtectedPredicatesPolicy({"audit"}),
         park::MakeInertiaPolicy()});
    status = db.Configure(std::move(options));
    if (!status.ok()) return Fail(status);
  }
  auto protect_run = db.Stabilize();
  if (!protect_run.ok()) return Fail(protect_run.status());
  std::printf("\nafter purge-vs-keep conflict with protected audit:\n");
  ShowQuery(db, "audit(O, C)");
  std::printf("  (%zu conflict(s) resolved in favour of the audit trail)\n",
              protect_run->stats.conflicts_resolved);
  return 0;
}
