// Graph maintenance: the paper's §4.2 example in full. We "want to build
// some irreflexive graph not containing any arc implied by transitivity of
// existing edges"; rule r1 proposes every arc, rules r2/r3 object, and a
// custom SELECT policy decides which arcs survive — exactly the paper's
// strategy, plus a second run with a different policy to show the policy
// is a plug-in parameter.

#include <cstdio>

#include "park/park.h"

namespace {

constexpr char kRules[] = R"(
  r1: p(X), p(Y) -> +q(X, Y).
  r2: q(X, X) -> -q(X, X).
  r3: q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y).
)";

/// The paper's SELECT: block r1 instances with x = y and those connecting
/// a and c; otherwise block the r3 instances (keep the arc).
park::PolicyPtr PaperPolicy(
    const std::shared_ptr<park::SymbolTable>& symbols) {
  park::SymbolId a = symbols->InternSymbol("a");
  park::SymbolId c = symbols->InternSymbol("c");
  return park::MakeLambdaPolicy(
      "paper-graph",
      [a, c](const park::PolicyContext&,
             const park::Conflict& conflict) -> park::Result<park::Vote> {
        const park::Value& x = conflict.atom.args()[0];
        const park::Value& y = conflict.atom.args()[1];
        if (x == y) return park::Vote::kDelete;
        bool connects_a_c =
            (x == park::Value::Symbol(a) && y == park::Value::Symbol(c)) ||
            (x == park::Value::Symbol(c) && y == park::Value::Symbol(a));
        return connects_a_c ? park::Vote::kDelete : park::Vote::kInsert;
      });
}

using PolicyFactory =
    park::PolicyPtr (*)(const std::shared_ptr<park::SymbolTable>&);

int RunOnce(const char* label, PolicyFactory make_policy) {
  auto symbols = park::MakeSymbolTable();
  auto program = park::ParseProgram(kRules, symbols);
  auto db = park::ParseDatabase("p(a). p(b). p(c).", symbols);
  if (!program.ok() || !db.ok()) {
    std::fprintf(stderr, "parse error\n");
    return 1;
  }
  park::ParkOptions options;
  options.policy = make_policy(symbols);
  options.trace_level = park::TraceLevel::kSummary;
  auto result = park::Park(*program, *db, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", label,
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n  result:  %s\n", label,
              result->database.ToString().c_str());
  std::printf("  blocked: %zu instance(s), %zu conflict(s), %zu restart(s)\n",
              result->stats.blocked_instances,
              result->stats.conflicts_resolved, result->stats.restarts);
  return 0;
}

}  // namespace

int main() {
  std::printf("Database: {p(a), p(b), p(c)}; program r1/r2/r3 from §4.2.\n\n");

  // The paper's policy keeps the adjacent arcs and drops loops and the
  // a--c arcs: {q(a,b), q(b,a), q(b,c), q(c,b)}.
  if (RunOnce("paper SELECT (keep adjacent arcs):", &PaperPolicy) != 0) {
    return 1;
  }

  // Same engine, different SELECT: prefer deletion everywhere — every
  // proposed arc loses and the graph stays empty. The fixpoint procedure
  // is untouched; only the policy object changed.
  if (RunOnce("\nalways-delete SELECT (drop every contested arc):",
              +[](const std::shared_ptr<park::SymbolTable>&) {
                return park::MakeAlwaysDeletePolicy();
              }) != 0) {
    return 1;
  }

  // And a third: prefer insertion — objections are overruled, the full
  // reflexive complete graph survives.
  if (RunOnce("\nalways-insert SELECT (keep every proposed arc):",
              +[](const std::shared_ptr<park::SymbolTable>&) {
                return park::MakeAlwaysInsertPolicy();
              }) != 0) {
    return 1;
  }
  return 0;
}
